package core

import (
	"fmt"
	"math"
	"sort"

	"modemerge/internal/library"
	"modemerge/internal/obs"
	"modemerge/internal/sdc"
)

// preliminary runs §3.1: the preliminary mode merging steps, each under
// its own child span of sp.
func (mg *Merger) preliminary(sp *obs.Span) error {
	step := func(name string, fn func()) {
		c := sp.Child(name)
		fn()
		c.Finish()
	}
	step("clock_union", mg.unionClocks)                 // §3.1.1
	step("clock_constraints", mg.mergeClockConstraints) // §3.1.2
	step("io_delays", mg.unionIODelays)                 // §3.1.3
	step("case_intersect", mg.intersectCases)           // §3.1.4
	step("disable_intersect", mg.intersectDisables)     // §3.1.5
	step("drive_load", mg.mergeDriveLoad)               // §3.1.6
	step("clock_exclusivity", mg.inferClockExclusivity) // §3.1.7
	c := sp.Child("exception_merge")                    // §3.1.9 + §3.1.10
	err := mg.mergeExceptions()
	c.Finish()
	return err
}

// modeNames maps mode indices to names.
func (mg *Merger) modeNames(idx []int) []string {
	out := make([]string, len(idx))
	for i, m := range idx {
		out[i] = mg.modes[m].Name
	}
	return out
}

// clockUnionKey identifies duplicate clocks across modes: same sources and
// waveform (§3.1.1), and for generated clocks the same derivation from the
// same (merged) master.
func (mg *Merger) clockUnionKey(m int, c *sdc.Clock) string {
	key := c.SourceKey() + "|" + c.WaveformKey()
	if c.Generated {
		key += "|" + c.GenKey() + "|" + mg.cmap.mapName(m, c.Master)
	}
	return key
}

// unionClocks implements §3.1.1: iterate all clocks of all modes, add each
// non-duplicate to the merged mode, renaming on conflicts, and build the
// two-way clock map.
func (mg *Merger) unionClocks() {
	byKey := map[string]string{} // union key → merged name
	taken := map[string]bool{}
	for m, mode := range mg.modes {
		mg.cmap.toMerged[m] = map[string]string{}
		for _, c := range mode.Clocks {
			key := mg.clockUnionKey(m, c)
			if mergedName, dup := byKey[key]; dup {
				mg.cmap.toMerged[m][c.Name] = mergedName
				mg.cmap.members[mergedName][m] = c.Name
				continue
			}
			name := c.Name
			for i := 1; taken[name]; i++ {
				name = fmt.Sprintf("%s_%d", c.Name, i)
			}
			if name != c.Name {
				mg.Report.RenamedClocks++
				mg.Report.prov(obs.Provenance{
					Stage:      "prelim/clock_union",
					Rule:       "§3.1.1 clock union",
					Action:     obs.ActionRename,
					Constraint: fmt.Sprintf("create_clock %s -> %s", c.Name, name),
					Clocks:     []string{name},
					Modes:      []string{mode.Name},
					Detail:     "name collides with a non-duplicate clock of an earlier mode",
				})
			}
			taken[name] = true
			byKey[key] = name

			mc := *c
			mc.Name = name
			mc.Waveform = append([]float64(nil), c.Waveform...)
			mc.Sources = append([]sdc.ObjRef(nil), c.Sources...)
			if c.Generated {
				mc.MasterPins = append([]sdc.ObjRef(nil), c.MasterPins...)
				mc.Master = mg.cmap.mapName(m, c.Master)
			}
			// Every merged clock coexists with others on possibly shared
			// sources; -add keeps them from replacing one another.
			if len(mc.Sources) > 0 {
				mc.Add = true
			}
			mg.merged.Clocks = append(mg.merged.Clocks, &mc)
			mg.cmap.order = append(mg.cmap.order, name)
			members := make([]string, len(mg.modes))
			members[m] = c.Name
			mg.cmap.members[name] = members
			mg.cmap.toMerged[m][c.Name] = name
		}
	}
	mg.Report.MergedClocks = len(mg.merged.Clocks)
}

// within reports whether two values agree within the relative tolerance.
func (mg *Merger) within(a, b float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= mg.opt.Tolerance*scale
}

// mergeClockConstraints implements §3.1.2: latency, uncertainty and
// transition constraints merge per merged clock, picking the minimum of
// min values and the maximum of max values.
func (mg *Merger) mergeClockConstraints() {
	type latAcc struct {
		min, max float64
		has      bool
	}
	// (merged clock, source?) → accumulated latency.
	lat := map[string]*latAcc{}
	latKey := func(clock string, source bool) string {
		if source {
			return clock + "\x00src"
		}
		return clock
	}
	uncSetup := map[string]float64{}
	uncHold := map[string]float64{}
	uncHas := map[string][2]bool{}
	interUnc := map[[2]string][2]float64{}
	interHas := map[[2]string][2]bool{}
	type trAcc struct {
		min, max float64
		has      bool
	}
	trans := map[string]*trAcc{}
	propagated := map[string]bool{}

	for m, mode := range mg.modes {
		for _, l := range mode.ClockLatencies {
			for _, cn := range l.Clocks {
				k := latKey(mg.cmap.mapName(m, cn), l.Source)
				a := lat[k]
				if a == nil {
					a = &latAcc{min: math.Inf(1), max: math.Inf(-1)}
					lat[k] = a
				}
				a.has = true
				if l.Level != sdc.MaxOnly && l.Value < a.min {
					a.min = l.Value
				}
				if l.Level != sdc.MinOnly && l.Value > a.max {
					a.max = l.Value
				}
			}
		}
		for _, u := range mode.ClockUncertainties {
			if u.FromClock != "" {
				k := [2]string{mg.cmap.mapName(m, u.FromClock), mg.cmap.mapName(m, u.ToClock)}
				v, h := interUnc[k], interHas[k]
				if u.Setup {
					v[0] = math.Max(v[0], u.Value)
					h[0] = true
				}
				if u.Hold {
					v[1] = math.Max(v[1], u.Value)
					h[1] = true
				}
				interUnc[k], interHas[k] = v, h
				continue
			}
			for _, cn := range u.Clocks {
				k := mg.cmap.mapName(m, cn)
				h := uncHas[k]
				if u.Setup {
					uncSetup[k] = math.Max(uncSetup[k], u.Value)
					h[0] = true
				}
				if u.Hold {
					uncHold[k] = math.Max(uncHold[k], u.Value)
					h[1] = true
				}
				uncHas[k] = h
			}
		}
		for _, tr := range mode.ClockTransitions {
			for _, cn := range tr.Clocks {
				k := mg.cmap.mapName(m, cn)
				a := trans[k]
				if a == nil {
					a = &trAcc{min: math.Inf(1), max: math.Inf(-1)}
					trans[k] = a
				}
				a.has = true
				if tr.Level != sdc.MaxOnly && tr.Value < a.min {
					a.min = tr.Value
				}
				if tr.Level != sdc.MinOnly && tr.Value > a.max {
					a.max = tr.Value
				}
			}
		}
		for _, pc := range mode.PropagatedClocks {
			for _, cn := range pc.Clocks {
				propagated[mg.cmap.mapName(m, cn)] = true
			}
		}
	}

	emitMinMax := func(clock string, source bool, a *latAcc) {
		if !a.has {
			return
		}
		minV, maxV := a.min, a.max
		if math.IsInf(minV, 1) {
			minV = maxV
		}
		if math.IsInf(maxV, -1) {
			maxV = minV
		}
		if minV == maxV {
			mg.merged.ClockLatencies = append(mg.merged.ClockLatencies,
				&sdc.ClockLatency{Value: minV, Source: source, Clocks: []string{clock}})
			return
		}
		mg.merged.ClockLatencies = append(mg.merged.ClockLatencies,
			&sdc.ClockLatency{Value: minV, Level: sdc.MinOnly, Source: source, Clocks: []string{clock}},
			&sdc.ClockLatency{Value: maxV, Level: sdc.MaxOnly, Source: source, Clocks: []string{clock}})
	}
	for _, name := range mg.cmap.order {
		if a := lat[latKey(name, false)]; a != nil {
			emitMinMax(name, false, a)
		}
		if a := lat[latKey(name, true)]; a != nil {
			emitMinMax(name, true, a)
		}
		if h := uncHas[name]; h[0] || h[1] {
			if h[0] && h[1] && uncSetup[name] == uncHold[name] {
				mg.merged.ClockUncertainties = append(mg.merged.ClockUncertainties,
					&sdc.ClockUncertainty{Value: uncSetup[name], Setup: true, Hold: true, Clocks: []string{name}})
			} else {
				if h[0] {
					mg.merged.ClockUncertainties = append(mg.merged.ClockUncertainties,
						&sdc.ClockUncertainty{Value: uncSetup[name], Setup: true, Clocks: []string{name}})
				}
				if h[1] {
					mg.merged.ClockUncertainties = append(mg.merged.ClockUncertainties,
						&sdc.ClockUncertainty{Value: uncHold[name], Hold: true, Clocks: []string{name}})
				}
			}
		}
		if a := trans[name]; a != nil && a.has {
			minV, maxV := a.min, a.max
			if math.IsInf(minV, 1) {
				minV = maxV
			}
			if math.IsInf(maxV, -1) {
				maxV = minV
			}
			if minV == maxV {
				mg.merged.ClockTransitions = append(mg.merged.ClockTransitions,
					&sdc.ClockTransition{Value: minV, Clocks: []string{name}})
			} else {
				mg.merged.ClockTransitions = append(mg.merged.ClockTransitions,
					&sdc.ClockTransition{Value: minV, Level: sdc.MinOnly, Clocks: []string{name}},
					&sdc.ClockTransition{Value: maxV, Level: sdc.MaxOnly, Clocks: []string{name}})
			}
		}
		if propagated[name] {
			mg.merged.PropagatedClocks = append(mg.merged.PropagatedClocks,
				&sdc.PropagatedClock{Clocks: []string{name}})
		}
	}
	var interKeys [][2]string
	for k := range interUnc {
		interKeys = append(interKeys, k)
	}
	sort.Slice(interKeys, func(i, j int) bool {
		return interKeys[i][0]+interKeys[i][1] < interKeys[j][0]+interKeys[j][1]
	})
	for _, k := range interKeys {
		v, h := interUnc[k], interHas[k]
		u := &sdc.ClockUncertainty{FromClock: k[0], ToClock: k[1], Setup: h[0], Hold: h[1]}
		u.Value = math.Max(v[0], v[1])
		mg.merged.ClockUncertainties = append(mg.merged.ClockUncertainties, u)
	}
}

// unionIODelays implements §3.1.3: every unique external delay (with its
// reference clock mapped) joins the merged mode with -add_delay.
func (mg *Merger) unionIODelays() {
	seen := map[string]bool{}
	for m, mode := range mg.modes {
		for _, d := range mode.IODelays {
			nd := *d
			nd.Ports = append([]sdc.ObjRef(nil), d.Ports...)
			if d.Clock != "" {
				nd.Clock = mg.cmap.mapName(m, d.Clock)
			}
			nd.Add = true
			key := nd.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			mg.merged.IODelays = append(mg.merged.IODelays, &nd)
		}
	}
}

// intersectCases implements §3.1.4: case analysis present in every mode
// with a consistent value joins the merged mode; objects that are cased in
// every mode with conflicting values never toggle in any mode and
// translate to set_disable_timing; the rest are dropped (the refinement
// phase will precisely disable any extra paths).
func (mg *Merger) intersectCases() {
	type caseInfo struct {
		values   map[int]string // mode → value string ("0"/"1")
		obj      sdc.ObjRef
		conflict bool
	}
	byObj := map[string]*caseInfo{}
	var order []string
	modesOf := func(info *caseInfo) []string {
		var idx []int
		for m := range info.values {
			idx = append(idx, m)
		}
		sort.Ints(idx)
		return mg.modeNames(idx)
	}
	for m, mode := range mg.modes {
		for _, ca := range mode.Cases {
			for _, obj := range ca.Objects {
				key := obj.String()
				info := byObj[key]
				if info == nil {
					info = &caseInfo{values: map[int]string{}, obj: obj}
					byObj[key] = info
					order = append(order, key)
				}
				v := ca.Value.String()
				if prev, ok := info.values[m]; ok && prev != v {
					info.conflict = true
				}
				info.values[m] = v
			}
		}
	}
	for _, key := range order {
		info := byObj[key]
		allModes := len(info.values) == len(mg.modes)
		same := !info.conflict
		if same && allModes {
			first := info.values[0]
			for _, v := range info.values {
				if v != first {
					same = false
					break
				}
			}
			if same {
				val := parseLogic(first)
				mg.merged.Cases = append(mg.merged.Cases,
					&sdc.CaseAnalysis{Value: val, Objects: []sdc.ObjRef{info.obj}})
				continue
			}
		}
		if allModes {
			// Cased in every mode with conflicting values: the object
			// never toggles in any individual mode, so disabling timing
			// through it is exact (§3.1.8's inferred CSTR1/CSTR2).
			mg.merged.Disables = append(mg.merged.Disables, &sdc.DisableTiming{
				Objects:  []sdc.ObjRef{info.obj},
				Inferred: true,
				Comment:  "inferred: case-analysis values conflict across merged modes",
			})
			mg.Report.TranslatedCases++
			mg.Report.prov(obs.Provenance{
				Stage:      "prelim/case_intersect",
				Rule:       "§3.1.4 case-analysis intersection",
				Action:     obs.ActionTranslate,
				Constraint: "set_case_analysis -> set_disable_timing " + info.obj.String(),
				Pins:       []string{info.obj.String()},
				Modes:      modesOf(info),
				Detail:     "cased in every mode with conflicting values; object never toggles",
			})
			continue
		}
		mg.Report.DroppedCases++
		mg.Report.prov(obs.Provenance{
			Stage:      "prelim/case_intersect",
			Rule:       "§3.1.4 case-analysis intersection",
			Action:     obs.ActionDrop,
			Constraint: "set_case_analysis " + info.obj.String(),
			Pins:       []string{info.obj.String()},
			Modes:      modesOf(info),
			Detail:     "not cased consistently in every mode; refinement restores precision",
		})
	}
}

func parseLogic(s string) library.Logic {
	if s == "1" {
		return library.L1
	}
	return library.L0
}

// intersectDisables implements §3.1.5: only disables present in every mode
// survive.
func (mg *Merger) intersectDisables() {
	counts := map[string]int{}
	first := map[string]*sdc.DisableTiming{}
	var order []string
	for m, mode := range mg.modes {
		seenInMode := map[string]bool{}
		for _, d := range mode.Disables {
			key := d.Key()
			if seenInMode[key] {
				continue
			}
			seenInMode[key] = true
			counts[key]++
			if m == 0 {
				first[key] = d
				order = append(order, key)
			}
		}
	}
	for _, key := range order {
		if counts[key] == len(mg.modes) {
			d := *first[key]
			d.Objects = append([]sdc.ObjRef(nil), first[key].Objects...)
			mg.merged.Disables = append(mg.merged.Disables, &d)
			continue
		}
		mg.Report.prov(obs.Provenance{
			Stage:      "prelim/disable_intersect",
			Rule:       "§3.1.5 disable intersection",
			Action:     obs.ActionDrop,
			Constraint: "set_disable_timing " + key,
			Detail: fmt.Sprintf("present in %d of %d modes; only disables common to all modes survive",
				counts[key], len(mg.modes)),
		})
	}
}

// mergeDriveLoad implements §3.1.6: drive and load constraints must agree
// across modes within the tolerance; the merged mode takes the pessimistic
// (larger) value.
func (mg *Merger) mergeDriveLoad() {
	type acc struct {
		value float64
		n     int
		ok    bool
	}
	inputTr := map[string]*acc{}
	loads := map[string]*acc{}
	drives := map[string]*acc{}
	drivingCells := map[string]string{}
	var trOrder, loadOrder, drvOrder []string

	collect := func(m map[string]*acc, order *[]string, key string, v float64) *acc {
		a := m[key]
		if a == nil {
			a = &acc{value: v, ok: true}
			m[key] = a
			*order = append(*order, key)
		} else {
			if !mg.within(a.value, v) {
				a.ok = false
			}
			a.value = math.Max(a.value, v)
		}
		a.n++
		return a
	}

	for _, mode := range mg.modes {
		for _, tr := range mode.InputTransitions {
			for _, p := range tr.Ports {
				collect(inputTr, &trOrder, p.Name, tr.Value)
			}
		}
		for _, l := range mode.Loads {
			for _, p := range l.Ports {
				collect(loads, &loadOrder, p.Name, l.Value)
			}
		}
		for _, dc := range mode.DrivingCells {
			for _, p := range dc.Ports {
				if dc.CellName != "" {
					if prev, ok := drivingCells[p.Name]; ok && prev != dc.CellName {
						mg.Report.warnf("set_driving_cell on %s differs across modes (%s vs %s); keeping %s",
							p.Name, prev, dc.CellName, prev)
						continue
					}
					drivingCells[p.Name] = dc.CellName
				} else {
					collect(drives, &drvOrder, p.Name, dc.Resistance)
				}
			}
		}
	}
	for _, p := range trOrder {
		a := inputTr[p]
		if !a.ok {
			mg.Report.warnf("set_input_transition on %s beyond tolerance across modes; using max %g", p, a.value)
		}
		mg.merged.InputTransitions = append(mg.merged.InputTransitions,
			&sdc.InputTransition{Value: a.value, Ports: []sdc.ObjRef{{Kind: sdc.PortObj, Name: p}}})
	}
	for _, p := range loadOrder {
		a := loads[p]
		if !a.ok {
			mg.Report.warnf("set_load on %s beyond tolerance across modes; using max %g", p, a.value)
		}
		mg.merged.Loads = append(mg.merged.Loads,
			&sdc.PortLoad{Value: a.value, Ports: []sdc.ObjRef{{Kind: sdc.PortObj, Name: p}}})
	}
	for _, p := range drvOrder {
		a := drives[p]
		if !a.ok {
			mg.Report.warnf("set_drive on %s beyond tolerance across modes; using max %g", p, a.value)
		}
		mg.merged.DrivingCells = append(mg.merged.DrivingCells,
			&sdc.DrivingCell{Resistance: a.value, Ports: []sdc.ObjRef{{Kind: sdc.PortObj, Name: p}}})
	}
	var dcPorts []string
	for p := range drivingCells {
		dcPorts = append(dcPorts, p)
	}
	sort.Strings(dcPorts)
	for _, p := range dcPorts {
		mg.merged.DrivingCells = append(mg.merged.DrivingCells,
			&sdc.DrivingCell{CellName: drivingCells[p], Ports: []sdc.ObjRef{{Kind: sdc.PortObj, Name: p}}})
	}
}

// inferClockExclusivity implements §3.1.7: merged clock pairs that cannot
// co-exist in any individual mode become physically exclusive. Two clocks
// co-exist in a mode when both exist there and the mode does not itself
// declare them exclusive.
func (mg *Merger) inferClockExclusivity() {
	names := mg.cmap.order
	n := len(names)
	if n < 2 {
		return
	}
	coexist := make([][]bool, n)
	for i := range coexist {
		coexist[i] = make([]bool, n)
	}
	// Iterate scenario contexts, not base modes: in a corner-aware merge
	// two clocks co-exist iff they co-exist in some (mode, corner)
	// scenario, so inferred exclusivity holds in every corner.
	for m := range mg.ctxs {
		ctx := mg.ctxs[m]
		for i := 0; i < n; i++ {
			li := mg.cmap.localName(names[i], m)
			if li == "" {
				continue
			}
			idI, okI := ctx.ClockByName(li)
			if !okI || !ctx.ClockActive(idI) {
				// A clock that captures and launches nothing in this mode
				// (replaced by a generated clock, fully blocked, …) does
				// not co-exist with anything here.
				continue
			}
			for j := i + 1; j < n; j++ {
				lj := mg.cmap.localName(names[j], m)
				if lj == "" {
					continue
				}
				idJ, okJ := ctx.ClockByName(lj)
				if !okJ || !ctx.ClockActive(idJ) {
					continue
				}
				if !ctx.Exclusive(idI, idJ) {
					coexist[i][j] = true
					coexist[j][i] = true
				}
			}
		}
	}
	// Try to express the exclusivity relation as one grouping: clocks
	// with identical coexistence rows share a group. Valid iff exactly
	// the cross-group pairs are exclusive.
	group := make([]int, n)
	var sigs []string
	for i := 0; i < n; i++ {
		sig := ""
		for j := 0; j < n; j++ {
			if i == j || coexist[i][j] {
				sig += "1"
			} else {
				sig += "0"
			}
		}
		found := -1
		for gi, s := range sigs {
			if s == sig {
				found = gi
				break
			}
		}
		if found < 0 {
			found = len(sigs)
			sigs = append(sigs, sig)
		}
		group[i] = found
	}
	valid := len(sigs) > 1
	for i := 0; i < n && valid; i++ {
		for j := i + 1; j < n && valid; j++ {
			crossGroup := group[i] != group[j]
			if crossGroup == coexist[i][j] {
				valid = false
			}
		}
	}
	var pairs int
	if valid {
		groups := make([][]string, len(sigs))
		for i, gi := range group {
			groups[gi] = append(groups[gi], names[i])
		}
		mg.merged.ClockGroups = append(mg.merged.ClockGroups, &sdc.ClockGroups{
			Name: "merged_exclusive", Kind: sdc.PhysicallyExclusive, Groups: groups})
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if !coexist[i][j] {
					pairs++
				}
			}
		}
	} else {
		// Fall back to one pairwise command per exclusive pair.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if coexist[i][j] {
					continue
				}
				pairs++
				mg.merged.ClockGroups = append(mg.merged.ClockGroups, &sdc.ClockGroups{
					Name:   fmt.Sprintf("excl_%s_%s", names[i], names[j]),
					Kind:   sdc.PhysicallyExclusive,
					Groups: [][]string{{names[i]}, {names[j]}},
				})
			}
		}
	}
	mg.Report.ExclusivePairs = pairs
}
