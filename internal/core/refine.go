package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"modemerge/internal/graph"
	"modemerge/internal/obs"
	"modemerge/internal/relation"
	"modemerge/internal/sdc"
	"modemerge/internal/sta"
)

// startEndAll computes pass-2 relations for every individual context and
// the merged context on the bounded pool (a context is only ever used
// from one goroutine at a time; index len(ctxs) is the merged context).
func (mg *Merger) startEndAll(endID graph.NodeID) (perMode []map[sta.RelKey]relation.Set, merged map[sta.RelKey]relation.Set) {
	perMode = make([]map[sta.RelKey]relation.Set, len(mg.ctxs))
	forEachParallel(context.Background(), len(mg.ctxs)+1, mg.opt.parallelism(), func(m int) {
		if m == len(mg.ctxs) {
			merged = mg.mctx.StartEndRelations(endID)
		} else {
			perMode[m] = mg.ctxs[m].StartEndRelations(endID)
		}
	})
	return perMode, merged
}

// throughAll computes pass-3 relations for every context on the bounded
// pool.
func (mg *Merger) throughAll(startID, endID graph.NodeID) (perMode [][]sta.ThroughRel, merged []sta.ThroughRel) {
	perMode = make([][]sta.ThroughRel, len(mg.ctxs))
	forEachParallel(context.Background(), len(mg.ctxs)+1, mg.opt.parallelism(), func(m int) {
		if m == len(mg.ctxs) {
			merged = mg.mctx.ThroughRelations(startID, endID)
		} else {
			perMode[m] = mg.ctxs[m].ThroughRelations(startID, endID)
		}
	})
	return perMode, merged
}

// forEachParallel runs fn(i) for i in [0,n) on a pool of at most workers
// goroutines (0 → GOMAXPROCS; 1 runs inline, fully sequential).
// Cancelling cx stops feeding new indices; already-started fn calls run
// to completion. Callers must check cx.Err() afterwards — results for
// unvisited indices are missing.
func forEachParallel(cx context.Context, n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if cx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if cx.Err() != nil {
					continue // drain without working
				}
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// endpointAll computes pass-1 relations for every context on the bounded
// pool. On cancellation the maps are partial; callers check cx.Err().
func (mg *Merger) endpointAll(cx context.Context) (perMode []map[sta.RelKey]relation.Set, merged map[sta.RelKey]relation.Set) {
	perMode = make([]map[sta.RelKey]relation.Set, len(mg.ctxs))
	forEachParallel(cx, len(mg.ctxs)+1, mg.opt.parallelism(), func(m int) {
		if m == len(mg.ctxs) {
			merged = mg.mctx.EndpointRelations(cx)
		} else {
			perMode[m] = mg.ctxs[m].EndpointRelations(cx)
		}
	})
	return perMode, merged
}

// clockRefinement implements §3.1.8: walk the merged clock network and
// stop every clock at the first node where no individual mode propagates
// it, emitting set_clock_sense -stop_propagation.
func (mg *Merger) clockRefinement() error {
	justify := func(node graph.NodeID, mergedClock string) bool {
		for m, ctx := range mg.ctxs {
			local := mg.cmap.localName(mergedClock, m)
			if local == "" {
				continue
			}
			for _, name := range ctx.ClockNamesAt(node) {
				if name == local {
					return true
				}
			}
		}
		return false
	}
	frontiers := mg.mctx.ExtraClocks(justify)
	for _, f := range frontiers {
		pins := mg.nodeRefs(f.Nodes)
		mg.merged.ClockSenses = append(mg.merged.ClockSenses, &sdc.ClockSense{
			StopPropagation: true,
			Clocks:          []string{f.Clock},
			Pins:            pins,
			Comment:         "inferred by clock refinement",
		})
		mg.Report.ClockStops += len(pins)
		pinNames := make([]string, len(pins))
		for i, p := range pins {
			pinNames[i] = p.Name
		}
		mg.Report.prov(obs.Provenance{
			Stage:      "clock_refine",
			Rule:       "§3.1.8 clock refinement",
			Action:     obs.ActionInsert,
			Constraint: "set_clock_sense -stop_propagation",
			Clocks:     []string{f.Clock},
			Pins:       pinNames,
			Detail:     "no individual mode propagates the clock past these pins",
		})
	}
	if len(frontiers) > 0 {
		return mg.rebuildMerged()
	}
	return nil
}

// dataRefinement implements §3.2: first block launch clocks that no
// individual mode produces (emitting scoped false paths), then run the
// 3-pass timing-relationship comparison, adding corrective false paths
// until the merged mode matches the per-path most-restrictive individual
// behaviour.
func (mg *Merger) dataRefinement(cx context.Context, sp *obs.Span) error {
	bsp := sp.Child("launch_blocking")
	err := mg.blockExtraLaunchClocks()
	bsp.Add("launch_blocks", int64(mg.Report.LaunchBlocks))
	bsp.Finish()
	if err != nil {
		return err
	}
	for iter := 0; iter < mg.opt.MaxRefineIterations; iter++ {
		if err := cx.Err(); err != nil {
			return err
		}
		mg.Report.Iterations = iter + 1
		isp := sp.Child(fmt.Sprintf("iteration_%d", iter+1))
		added, err := mg.threePass(cx, isp)
		isp.Add("constraints_added", int64(added))
		isp.Finish()
		if err != nil {
			return err
		}
		if added == 0 {
			return nil
		}
		if err := mg.rebuildMerged(); err != nil {
			return err
		}
	}
	mg.Report.warnf("refinement did not converge in %d iterations", mg.opt.MaxRefineIterations)
	return nil
}

// blockExtraLaunchClocks is §3.2's first data refinement step, run at arc
// granularity: a launch clock's data may cross an arc in the merged mode
// only if it does so in at least one individual mode.
func (mg *Merger) blockExtraLaunchClocks() error {
	seedJustify := func(node graph.NodeID, mergedClock string) bool {
		for m, ctx := range mg.ctxs {
			local := mg.cmap.localName(mergedClock, m)
			if local == "" {
				continue
			}
			if ctx.HasLaunchClockAt(node, local) {
				return true
			}
		}
		return false
	}
	arcJustify := func(ai int32, mergedClock string) bool {
		from := mg.g.Arc(ai).From
		for m, ctx := range mg.ctxs {
			local := mg.cmap.localName(mergedClock, m)
			if local == "" {
				continue
			}
			if !ctx.ArcDisabledAt(ai) && ctx.HasLaunchClockAt(from, local) {
				return true
			}
		}
		return false
	}
	frontiers := mg.mctx.ExtraLaunchFlows(seedJustify, arcJustify)
	for _, f := range frontiers {
		if len(f.Nodes) > 0 {
			through := &sdc.PointList{Pins: mg.nodeRefs(f.Nodes)}
			e := &sdc.Exception{
				Kind:     sdc.FalsePath,
				From:     &sdc.PointList{Clocks: []string{f.Clock}},
				Throughs: []*sdc.PointList{through},
				To:       &sdc.PointList{},
				Comment:  "inferred by data refinement (unjustified launch clock)",
			}
			mg.merged.Exceptions = append(mg.merged.Exceptions, e)
			mg.Report.LaunchBlocks += len(f.Nodes)
			mg.provException("data_refine/launch_blocking",
				"§3.2 launch clock blocking", e, f.Clock,
				"no individual mode launches this clock at these pins")
		}
		for _, pair := range f.Arcs {
			e := &sdc.Exception{
				Kind: sdc.FalsePath,
				From: &sdc.PointList{Clocks: []string{f.Clock}},
				Throughs: []*sdc.PointList{
					{Pins: mg.nodeRefs(pair[:1])},
					{Pins: mg.nodeRefs(pair[1:])},
				},
				To:      &sdc.PointList{},
				Comment: "inferred by data refinement (unjustified launch flow)",
			}
			mg.merged.Exceptions = append(mg.merged.Exceptions, e)
			mg.Report.LaunchBlocks++
			mg.provException("data_refine/launch_blocking",
				"§3.2 launch clock blocking", e, f.Clock,
				"no individual mode drives this clock across the arc")
		}
	}
	if len(frontiers) > 0 {
		return mg.rebuildMerged()
	}
	return nil
}

// provException records provenance for one refinement-inserted exception,
// rendering the exact SDC command it contributes to the merged mode.
func (mg *Merger) provException(stage, rule string, e *sdc.Exception, clock, detail string) {
	p := obs.Provenance{
		Stage:      stage,
		Rule:       rule,
		Action:     obs.ActionInsert,
		Constraint: sdc.WriteException(e),
		Detail:     detail,
	}
	if clock != "" {
		p.Clocks = []string{clock}
	}
	mg.Report.prov(p)
}

// nodeRefs converts graph nodes to pin/port references, sorted by name.
func (mg *Merger) nodeRefs(nodes []graph.NodeID) []sdc.ObjRef {
	refs := make([]sdc.ObjRef, 0, len(nodes))
	for _, n := range nodes {
		node := mg.g.Node(n)
		kind := sdc.PinObj
		if node.Port != nil {
			kind = sdc.PortObj
		}
		refs = append(refs, sdc.ObjRef{Kind: kind, Name: node.Name})
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Name < refs[j].Name })
	return refs
}

// groupStates is the per-path-group comparison input: the per-mode state
// sets (merged clock namespace) and the merged mode's state set.
type groupStates struct {
	perMode []relation.Set // indexed by mode; zero set = group absent
	merged  relation.Set
}

// mergedTimes reports whether the merged mode actually times the group
// (non-empty and not purely false).
func mergedTimes(gs *groupStates) bool {
	return !gs.merged.Empty() && !gs.merged.Equal(relation.NewSet(relation.StateFalse))
}

// target computes the merged-target state set: for singleton per-mode
// sets, the most restrictive state across modes (absent = not timed =
// false). Multi-state mode sets make the group ambiguous (nil, false).
func (gs *groupStates) target() (relation.Set, bool) {
	states := make([]relation.State, 0, len(gs.perMode))
	for _, set := range gs.perMode {
		if set.Empty() {
			states = append(states, relation.StateFalse)
			continue
		}
		st, single := set.Single()
		if !single {
			return relation.Set{}, false
		}
		states = append(states, st)
	}
	return relation.NewSet(relation.MergeTarget(states)), true
}

// mapRelKey rewrites a mode-local relation key into the merged clock
// namespace.
func (mg *Merger) mapRelKey(m int, k sta.RelKey) sta.RelKey {
	k.Launch = mg.cmap.mapName(m, k.Launch)
	k.Capture = mg.cmap.mapName(m, k.Capture)
	return k
}

// gatherGroups aligns relation maps of all modes and the merged mode.
func (mg *Merger) gatherGroups(perMode []map[sta.RelKey]relation.Set, merged map[sta.RelKey]relation.Set) map[sta.RelKey]*groupStates {
	out := map[sta.RelKey]*groupStates{}
	get := func(k sta.RelKey) *groupStates {
		gs := out[k]
		if gs == nil {
			gs = &groupStates{perMode: make([]relation.Set, len(mg.modes))}
			out[k] = gs
		}
		return gs
	}
	for m, rels := range perMode {
		for k, set := range rels {
			mk := mg.mapRelKey(m, k)
			gs := get(mk)
			gs.perMode[m].AddSet(set)
		}
	}
	for k, set := range merged {
		get(k).merged = set
	}
	return out
}

// threePass runs passes 1–3 of §3.2 once, emitting corrective false
// paths; it returns how many constraints were added. Cancelling cx
// aborts between and inside the passes with the context error.
func (mg *Merger) threePass(cx context.Context, sp *obs.Span) (int, error) {
	added := 0

	// ---- Pass 1: endpoint granularity ----
	p1 := sp.Child("pass1")
	perMode, mergedRels := mg.endpointAll(cx)
	if err := cx.Err(); err != nil {
		p1.Finish()
		return 0, err
	}
	groups := mg.gatherGroups(perMode, mergedRels)

	// Ambiguous endpoints to forward to pass 2, deduplicated.
	pass2 := map[string]bool{}
	var p1Fixes []fixEntry
	for key, gs := range groups {
		target, ok := gs.target()
		if !ok {
			mg.Report.Pass1Ambiguous++
			pass2[key.End] = true
			continue
		}
		switch relation.Compare(target, gs.merged) {
		case relation.Match:
		case relation.Mismatch:
			mg.Report.Pass1Mismatch++
			if f, ok := fixFor(key, target, gs.merged); ok {
				p1Fixes = append(p1Fixes, f)
			} else {
				mg.Report.PessimisticGroups++
			}
		case relation.Ambiguous:
			mg.Report.Pass1Ambiguous++
			pass2[key.End] = true
		}
	}
	added += mg.emitFixes(p1Fixes, groups, "data_refine/pass1", "§3.2 pass-1 endpoint comparison")
	p1.Add("path_groups", int64(len(groups)))
	p1.Add("fixes", int64(len(p1Fixes)))
	p1.Finish()

	// ---- Pass 2: startpoint–endpoint granularity ----
	p2 := sp.Child("pass2")
	var pass2Ends []string
	for end := range pass2 {
		pass2Ends = append(pass2Ends, end)
	}
	sort.Strings(pass2Ends)
	type sePair struct{ start, end string }
	pass3 := map[sePair]bool{}
	// Per-endpoint relations compute in parallel (contexts are safe for
	// concurrent relation queries); comparison stays sequential and
	// deterministic. Fixes and groups accumulate across endpoints so the
	// emission step can aggregate clock-pair kills into few constraints
	// (keys are unique per endpoint, so merging the maps is safe).
	seGroupsPerEnd := make([]map[sta.RelKey]*groupStates, len(pass2Ends))
	var firstErr error
	var errMu sync.Mutex
	forEachParallel(cx, len(pass2Ends), mg.opt.parallelism(), func(i int) {
		endID, ok := mg.g.NodeByName(pass2Ends[i])
		if !ok {
			errMu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("internal: endpoint %q not in graph", pass2Ends[i])
			}
			errMu.Unlock()
			return
		}
		perModeSE := make([]map[sta.RelKey]relation.Set, len(mg.ctxs))
		for m, ctx := range mg.ctxs {
			perModeSE[m] = ctx.StartEndRelations(endID)
		}
		seGroupsPerEnd[i] = mg.gatherGroups(perModeSE, mg.mctx.StartEndRelations(endID))
	})
	if firstErr != nil {
		p2.Finish()
		return added, firstErr
	}
	if err := cx.Err(); err != nil {
		p2.Finish()
		return added, err
	}
	allSEGroups := map[sta.RelKey]*groupStates{}
	var p2Fixes []fixEntry
	for _, seGroups := range seGroupsPerEnd {
		for key, gs := range seGroups {
			allSEGroups[key] = gs
			target, ok := gs.target()
			if !ok {
				mg.Report.Pass2Ambiguous++
				pass3[sePair{key.Start, key.End}] = true
				continue
			}
			switch relation.Compare(target, gs.merged) {
			case relation.Match:
			case relation.Mismatch:
				mg.Report.Pass2Mismatch++
				if f, ok := fixFor(key, target, gs.merged); ok {
					p2Fixes = append(p2Fixes, f)
				} else {
					mg.Report.PessimisticGroups++
				}
			case relation.Ambiguous:
				mg.Report.Pass2Ambiguous++
				pass3[sePair{key.Start, key.End}] = true
			}
		}
	}
	added += mg.emitFixes(p2Fixes, allSEGroups, "data_refine/pass2", "§3.2 pass-2 start-end comparison")
	p2.Add("endpoints", int64(len(pass2Ends)))
	p2.Add("path_groups", int64(len(allSEGroups)))
	p2.Add("fixes", int64(len(p2Fixes)))
	p2.Finish()

	// ---- Pass 3: through-point granularity ----
	p3 := sp.Child("pass3")
	defer p3.Finish()
	var pairs []sePair
	for p := range pass3 {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].start != pairs[j].start {
			return pairs[i].start < pairs[j].start
		}
		return pairs[i].end < pairs[j].end
	})
	// Relations per pair compute in parallel; comparison and constraint
	// emission stay sequential and deterministic.
	type p3data struct {
		perMode [][]sta.ThroughRel
		merged  []sta.ThroughRel
		err     error
	}
	data := make([]p3data, len(pairs))
	forEachParallel(cx, len(pairs), mg.opt.parallelism(), func(i int) {
		startID, ok1 := mg.g.NodeByName(pairs[i].start)
		endID, ok2 := mg.g.NodeByName(pairs[i].end)
		if !ok1 || !ok2 {
			data[i].err = fmt.Errorf("internal: pass-3 pair %s→%s not in graph", pairs[i].start, pairs[i].end)
			return
		}
		perMode := make([][]sta.ThroughRel, len(mg.ctxs))
		for m, ctx := range mg.ctxs {
			perMode[m] = ctx.ThroughRelations(startID, endID)
		}
		data[i] = p3data{perMode: perMode, merged: mg.mctx.ThroughRelations(startID, endID)}
	})
	if err := cx.Err(); err != nil {
		return added, err
	}
	p3.Add("pairs", int64(len(pairs)))
	for i, p := range pairs {
		if data[i].err != nil {
			return added, data[i].err
		}
		n, err := mg.pass3(p.start, p.end, data[i].perMode, data[i].merged)
		if err != nil {
			return added, err
		}
		added += n
	}
	return added, nil
}

// fixEntry is one corrective constraint request: a mismatching path group
// plus the target state the merged mode must be brought to (StateFalse →
// a false path, Multicycle → a multicycle path, Max/MinDelay → a delay
// bound).
type fixEntry struct {
	key   sta.RelKey
	state relation.State
}

// fixFor decides whether a pass-1/2 mismatch is correctable. Two cases
// get a corrective constraint:
//
//   - the target is false (the merged mode times paths no mode times —
//     the paper's accuracy fix, a corrective false path), or
//   - the merged state relaxes the target (e.g. a kept MCP(3) where one
//     mode demands MCP(2) — a sign-off safety fix, a corrective
//     exception of the target state).
//
// Remaining differences leave the merged mode tighter than needed, which
// is sign-off safe and only counted.
func fixFor(key sta.RelKey, target, merged relation.Set) (fixEntry, bool) {
	ts, ok1 := target.Single()
	ms, ok2 := merged.Single()
	if !ok1 || !ok2 {
		return fixEntry{}, false
	}
	if ts != relation.StateFalse && !relation.Relaxed(ms, ts) {
		return fixEntry{}, false
	}
	return fixEntry{key: key, state: ts}, true
}

// fixException builds the corrective exception skeleton for a target
// state and check side.
func fixException(state relation.State, check relation.CheckType) *sdc.Exception {
	e := &sdc.Exception{From: &sdc.PointList{}, To: &sdc.PointList{},
		Comment: "inferred by relationship refinement", Multiplier: 1}
	switch state.Kind {
	case relation.Multicycle:
		e.Kind = sdc.MulticyclePath
		e.Multiplier = state.Mult
	case relation.MaxDelayK:
		e.Kind = sdc.MaxDelay
		e.Value = state.Value
	case relation.MinDelayK:
		e.Kind = sdc.MinDelay
		e.Value = state.Value
	default:
		e.Kind = sdc.FalsePath
	}
	switch check {
	case relation.Setup:
		e.SetupHold = sdc.MaxOnly
	case relation.Hold:
		e.SetupHold = sdc.MinOnly
	}
	return e
}

// emitFixes turns mismatch entries into corrective constraints, keeping
// the output compact without ever widening a constraint beyond its fixed
// path groups:
//
//   - Entries sharing (launch, capture, check, target state) aggregate
//     into one exception -from [launch] -through {startpoints} -through
//     {endpoints} -to [capture] when the fixed set is the full
//     startpoints×endpoints cartesian product; otherwise one exception
//     per startpoint carries exactly its endpoints.
//   - Pass-1 entries (start "*") aggregate over endpoints only.
//   - Corrective setup and hold twins collapse into one unrestricted
//     exception (see addFalsePath).
func (mg *Merger) emitFixes(fixes []fixEntry, groups map[sta.RelKey]*groupStates, stage, rule string) int {
	if len(fixes) == 0 {
		return 0
	}

	// Step 1: when every (launch, capture) pair the merged mode times
	// between one start and one end mismatches with the same false
	// target, one unscoped false path covers the whole group — the
	// paper's "set_false_path -to rX/D" CSTR1 form. The check is safe
	// here because `groups` contains every pair of the group.
	type groupID struct{ start, end string }
	fixedKeys := map[sta.RelKey]bool{}
	for _, f := range fixes {
		fixedKeys[f.key] = true
	}
	groupOK := map[groupID]bool{}
	for _, f := range fixes {
		if f.state == relation.StateFalse {
			groupOK[groupID{f.key.Start, f.key.End}] = true
		}
	}
	// One pass over all groups: any validly timed, unfixed pair disables
	// its (start, end) group.
	for gk, gs := range groups {
		gid := groupID{gk.Start, gk.End}
		if ok, interesting := groupOK[gid]; !interesting || !ok {
			continue
		}
		if gs.merged.Empty() {
			continue
		}
		if !fixedKeys[gk] && !gs.merged.Equal(relation.NewSet(relation.StateFalse)) {
			groupOK[gid] = false
		}
	}
	added := 0
	var rest []fixEntry
	emittedGroup := map[groupID]bool{}
	for _, f := range fixes {
		gid := groupID{f.key.Start, f.key.End}
		if f.state == relation.StateFalse && groupOK[gid] {
			if !emittedGroup[gid] {
				emittedGroup[gid] = true
				e := &sdc.Exception{
					Kind:    sdc.FalsePath,
					From:    &sdc.PointList{},
					To:      &sdc.PointList{Pins: []sdc.ObjRef{mg.objRefFor(gid.end)}},
					Comment: "inferred by relationship refinement",
				}
				if gid.start != "*" && gid.start != "" {
					e.From = &sdc.PointList{Pins: []sdc.ObjRef{mg.objRefFor(gid.start)}}
				}
				mg.addFalsePath(e, stage, rule,
					"every clock pair timed through this path group mismatches with a false target")
				added++
			}
			continue
		}
		rest = append(rest, f)
	}
	fixes = rest
	if len(fixes) == 0 {
		return added
	}
	type aggKey struct {
		launch, capture string
		check           relation.CheckType
		state           relation.State
	}
	byAgg := map[aggKey][]fixEntry{}
	var order []aggKey
	for _, f := range fixes {
		k := aggKey{f.key.Launch, f.key.Capture, f.key.Check, f.state}
		if _, seen := byAgg[k]; !seen {
			order = append(order, k)
		}
		byAgg[k] = append(byAgg[k], f)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.launch != b.launch {
			return a.launch < b.launch
		}
		if a.capture != b.capture {
			return a.capture < b.capture
		}
		if a.check != b.check {
			return a.check < b.check
		}
		return a.state.String() < b.state.String()
	})

	emit := func(k aggKey, starts, ends []string) {
		e := fixException(k.state, k.check)
		e.From = &sdc.PointList{Clocks: []string{k.launch}}
		e.To = &sdc.PointList{Clocks: []string{k.capture}}
		if len(starts) > 0 {
			refs := make([]sdc.ObjRef, 0, len(starts))
			for _, s := range starts {
				refs = append(refs, mg.objRefFor(s))
			}
			e.Throughs = append(e.Throughs, &sdc.PointList{Pins: refs})
		}
		refs := make([]sdc.ObjRef, 0, len(ends))
		for _, s := range ends {
			refs = append(refs, mg.objRefFor(s))
		}
		e.Throughs = append(e.Throughs, &sdc.PointList{Pins: refs})
		mg.addFalsePath(e, stage, rule,
			"merged mode relaxes the most restrictive individual-mode relation")
		added++
	}

	for _, k := range order {
		entries := byAgg[k]
		starts := map[string]bool{}
		ends := map[string]bool{}
		pairs := map[[2]string]bool{}
		for _, f := range entries {
			start := f.key.Start
			if start == "*" {
				start = ""
			}
			starts[start] = true
			ends[f.key.End] = true
			pairs[[2]string{start, f.key.End}] = true
		}
		sortedKeys := func(m map[string]bool) []string {
			out := make([]string, 0, len(m))
			for s := range m {
				out = append(out, s)
			}
			sort.Strings(out)
			return out
		}
		ss, es := sortedKeys(starts), sortedKeys(ends)
		// Cartesian closure: a pair absent from the fixes may still be
		// safely covered when its path group either has no live paths
		// (constraining nothing is harmless) or is already false in the
		// merged mode. Only pairs the merged mode validly times exclude
		// their startpoint from the aggregate.
		closureSafe := func(s, e string) bool {
			if pairs[[2]string{s, e}] {
				return true
			}
			start := s
			if start == "" {
				start = "*"
			}
			gk := sta.RelKey{Start: start, End: e, Launch: k.launch, Capture: k.capture, Check: k.check}
			gs, exists := groups[gk]
			if !exists {
				return true // no such path group
			}
			return fixedKeys[gk] || !mergedTimes(gs)
		}
		var aggStarts, soloStarts []string
		for _, s := range ss {
			ok := true
			for _, e := range es {
				if !closureSafe(s, e) {
					ok = false
					break
				}
			}
			if ok {
				aggStarts = append(aggStarts, s)
			} else {
				soloStarts = append(soloStarts, s)
			}
		}
		if len(aggStarts) > 0 {
			if len(aggStarts) == 1 && aggStarts[0] == "" {
				emit(k, nil, es)
			} else {
				emit(k, aggStarts, es)
			}
		}
		// Startpoints with a validly timed pair keep exactly their own
		// endpoints, grouped by identical endpoint signature.
		bySig := map[string][]string{}
		sigEnds := map[string][]string{}
		var sigOrder []string
		for _, s := range soloStarts {
			var myEnds []string
			for _, e := range es {
				if pairs[[2]string{s, e}] {
					myEnds = append(myEnds, e)
				}
			}
			sig := strings.Join(myEnds, "\x00")
			if _, seen := bySig[sig]; !seen {
				sigOrder = append(sigOrder, sig)
				sigEnds[sig] = myEnds
			}
			bySig[sig] = append(bySig[sig], s)
		}
		for _, sig := range sigOrder {
			group := bySig[sig]
			if len(group) == 1 && group[0] == "" {
				emit(k, nil, sigEnds[sig])
			} else {
				emit(k, group, sigEnds[sig])
			}
		}
	}
	return added
}

// addFalsePath appends an inferred false path, first merging it with an
// existing setup/hold twin into a single both-sides exception. Stage and
// rule feed the provenance record for the inserted (or widened) exception.
func (mg *Merger) addFalsePath(e *sdc.Exception, stage, rule, detail string) {
	if e.SetupHold != sdc.MinMaxBoth {
		twin := e.Clone()
		if e.SetupHold == sdc.MaxOnly {
			twin.SetupHold = sdc.MinOnly
		} else {
			twin.SetupHold = sdc.MaxOnly
		}
		twinKey := twin.Key()
		for i, have := range mg.merged.Exceptions {
			if have.Key() == twinKey {
				both := e.Clone()
				both.SetupHold = sdc.MinMaxBoth
				mg.merged.Exceptions[i] = both
				mg.provException(stage, rule, both, "", detail+" (merged with setup/hold twin)")
				return
			}
		}
	}
	mg.merged.Exceptions = append(mg.merged.Exceptions, e)
	mg.Report.AddedFalsePaths++
	mg.provException(stage, rule, e, "", detail)
}

// pass3 refines one ambiguous (start, end) pair at through-point
// granularity.
func (mg *Merger) pass3(startName, endName string, perModeTR [][]sta.ThroughRel, mergedRels []sta.ThroughRel) (int, error) {
	startID, ok1 := mg.g.NodeByName(startName)
	endID, ok2 := mg.g.NodeByName(endName)
	if !ok1 || !ok2 {
		return 0, fmt.Errorf("internal: pass-3 pair %s→%s not in graph", startName, endName)
	}
	// Through relations per mode and merged, indexed by node.
	type nodeStates struct {
		perMode []map[sta.RelKey]relation.Set
		merged  map[sta.RelKey]relation.Set
		modeAmb []bool
		mergAmb bool
	}
	byNode := map[graph.NodeID]*nodeStates{}
	get := func(n graph.NodeID) *nodeStates {
		ns := byNode[n]
		if ns == nil {
			ns = &nodeStates{perMode: make([]map[sta.RelKey]relation.Set, len(mg.modes)),
				modeAmb: make([]bool, len(mg.modes))}
			byNode[n] = ns
		}
		return ns
	}
	for m := range mg.ctxs {
		for _, tr := range perModeTR[m] {
			ns := get(tr.Node)
			mapped := map[sta.RelKey]relation.Set{}
			for k, set := range tr.States {
				mapped[mg.mapRelKey(m, k)] = set
			}
			ns.perMode[m] = mapped
			ns.modeAmb[m] = tr.Ambiguous
		}
	}
	for _, tr := range mergedRels {
		ns := get(tr.Node)
		ns.merged = tr.States
		ns.mergAmb = tr.Ambiguous
	}

	// Walk cone nodes in topological order; collect the frontier of
	// mismatching nodes (not dominated by an already-chosen node) per
	// (launch, capture, check).
	cone := mg.g.ConeBetween(startID, endID)
	type fixKey struct {
		launch, capture string
		check           relation.CheckType
		state           relation.State
	}
	chosen := map[fixKey][]graph.NodeID{}
	var chosenOrder []fixKey
	covered := map[fixKey][]bool{} // per key: nodes already downstream of a fix
	// Clock pairs the merged mode times anywhere in this cone; when only
	// one exists, emitted false paths can skip the clock scoping.
	allPairs := map[[2]string]bool{}

	markCovered := func(k fixKey, n graph.NodeID) {
		reach := mg.g.ForwardReach([]graph.NodeID{n})
		cov := covered[k]
		if cov == nil {
			cov = make([]bool, mg.g.NumNodes())
			covered[k] = cov
		}
		for i, r := range reach {
			if r {
				cov[i] = true
			}
		}
	}

	for _, n := range cone {
		if n == startID || n == endID {
			continue
		}
		ns := byNode[n]
		if ns == nil {
			continue
		}
		// Align keys across modes and merged for this node.
		keys := map[sta.RelKey]bool{}
		for _, rels := range ns.perMode {
			for k := range rels {
				keys[k] = true
			}
		}
		for k := range ns.merged {
			keys[k] = true
		}
		// Sorted key order keeps fix emission (and thus merged output and
		// provenance records) deterministic across runs.
		sortedKeys := make([]sta.RelKey, 0, len(keys))
		for k := range keys {
			sortedKeys = append(sortedKeys, k)
		}
		sort.Slice(sortedKeys, func(i, j int) bool {
			a, b := sortedKeys[i], sortedKeys[j]
			if a.Launch != b.Launch {
				return a.Launch < b.Launch
			}
			if a.Capture != b.Capture {
				return a.Capture < b.Capture
			}
			return a.Check < b.Check
		})
		for _, k := range sortedKeys {
			covKey := fixKey{launch: k.Launch, capture: k.Capture, check: k.Check}
			if ns.merged != nil && !ns.merged[k].Empty() {
				allPairs[[2]string{k.Launch, k.Capture}] = true
			}
			if cov := covered[covKey]; cov != nil && cov[n] {
				continue
			}
			// Target over modes at this node.
			states := make([]relation.State, 0, len(mg.modes))
			ambiguous := false
			for m := range mg.modes {
				var set relation.Set
				if ns.perMode[m] != nil {
					set = ns.perMode[m][k]
				}
				if set.Empty() {
					states = append(states, relation.StateFalse)
					continue
				}
				st, single := set.Single()
				if !single {
					ambiguous = true
					break
				}
				states = append(states, st)
			}
			if ambiguous || ns.mergAmb {
				continue // finer than pass 3; no fix at this node
			}
			target := relation.MergeTarget(states)
			var mergedSet relation.Set
			if ns.merged != nil {
				mergedSet = ns.merged[k]
			}
			if mergedSet.Empty() {
				continue // merged does not time these paths
			}
			ms, single := mergedSet.Single()
			if !single {
				continue // reconverging subclasses; a later node resolves them
			}
			if ms == target {
				continue
			}
			if target != relation.StateFalse && !relation.Relaxed(ms, target) {
				mg.Report.PessimisticGroups++
				continue
			}
			// False target or relaxed mismatch: constrain paths through
			// this node to the target state.
			mg.Report.Pass3Mismatch++
			fk := fixKey{k.Launch, k.Capture, k.Check, target}
			if len(chosen[fk]) == 0 {
				chosenOrder = append(chosenOrder, fk)
			}
			chosen[fk] = append(chosen[fk], n)
			markCovered(covKey, n)
		}
	}

	added := 0
	for _, fk := range chosenOrder {
		nodes := chosen[fk]
		e := fixException(fk.state, fk.check)
		e.Comment = "inferred by pass-3 refinement"
		e.From = &sdc.PointList{Pins: []sdc.ObjRef{mg.objRefFor(startName)}}
		e.Throughs = []*sdc.PointList{{Pins: mg.nodeRefs(nodes)}}
		e.To = &sdc.PointList{Pins: []sdc.ObjRef{mg.objRefFor(endName)}}
		if len(allPairs) > 1 {
			// Several clock pairs share the cone: keep the fix scoped to
			// its own launch/capture clocks (pins move into throughs).
			e.Throughs = append([]*sdc.PointList{{Pins: e.From.Pins}}, e.Throughs...)
			e.Throughs = append(e.Throughs, &sdc.PointList{Pins: e.To.Pins})
			e.From = &sdc.PointList{Clocks: []string{fk.launch}}
			e.To = &sdc.PointList{Clocks: []string{fk.capture}}
		}
		mg.addFalsePath(e, "data_refine/pass3", "§3.2 pass-3 through-point refinement",
			"mismatch localized to through points inside the start-end cone")
		added++
	}
	return added, nil
}

// objRefFor builds a pin or port reference for a flat name.
func (mg *Merger) objRefFor(name string) sdc.ObjRef {
	if mg.design.PortByName(name) != nil {
		return sdc.ObjRef{Kind: sdc.PortObj, Name: name}
	}
	return sdc.ObjRef{Kind: sdc.PinObj, Name: name}
}
