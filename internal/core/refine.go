package core

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"

	"modemerge/internal/graph"
	"modemerge/internal/obs"
	"modemerge/internal/relation"
	"modemerge/internal/sdc"
	"modemerge/internal/sta"
)

// throughAll computes pass-3 relations for every context on the bounded
// pool.
func (mg *Merger) throughAll(startID, endID graph.NodeID) (perMode [][]sta.ThroughRel, merged []sta.ThroughRel) {
	perMode = make([][]sta.ThroughRel, len(mg.ctxs))
	forEachParallel(context.Background(), len(mg.ctxs)+1, mg.opt.parallelism(), func(m int) {
		if m == len(mg.ctxs) {
			merged = mg.mctx.ThroughRelations(startID, endID)
		} else {
			perMode[m] = mg.ctxs[m].ThroughRelations(startID, endID)
		}
	})
	return perMode, merged
}

// forEachParallel runs fn(i) for i in [0,n) on a pool of at most workers
// goroutines (0 → GOMAXPROCS; 1 runs inline, fully sequential).
// Cancelling cx stops feeding new indices; already-started fn calls run
// to completion. Callers must check cx.Err() afterwards — results for
// unvisited indices are missing.
func forEachParallel(cx context.Context, n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if cx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if cx.Err() != nil {
					continue // drain without working
				}
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// endpointAll computes pass-1 relations for every context on the bounded
// pool. On cancellation the maps are partial; callers check cx.Err().
func (mg *Merger) endpointAll(cx context.Context) (perMode []map[sta.RelKey]relation.Set, merged map[sta.RelKey]relation.Set) {
	perMode = make([]map[sta.RelKey]relation.Set, len(mg.ctxs))
	forEachParallel(cx, len(mg.ctxs)+1, mg.opt.parallelism(), func(m int) {
		if m == len(mg.ctxs) {
			merged = mg.mctx.EndpointRelations(cx)
		} else {
			perMode[m] = mg.ctxs[m].EndpointRelations(cx)
		}
	})
	return perMode, merged
}

// clockRefinement implements §3.1.8: walk the merged clock network and
// stop every clock at the first node where no individual mode propagates
// it, emitting set_clock_sense -stop_propagation.
func (mg *Merger) clockRefinement() error {
	justify := func(node graph.NodeID, mergedClock string) bool {
		for m, ctx := range mg.ctxs {
			local := mg.cmap.localName(mergedClock, m)
			if local == "" {
				continue
			}
			for _, name := range ctx.ClockNamesAt(node) {
				if name == local {
					return true
				}
			}
		}
		return false
	}
	frontiers := mg.mctx.ExtraClocks(justify)
	for _, f := range frontiers {
		pins := mg.nodeRefs(f.Nodes)
		mg.merged.ClockSenses = append(mg.merged.ClockSenses, &sdc.ClockSense{
			StopPropagation: true,
			Clocks:          []string{f.Clock},
			Pins:            pins,
			Comment:         "inferred by clock refinement",
		})
		mg.Report.ClockStops += len(pins)
		pinNames := make([]string, len(pins))
		for i, p := range pins {
			pinNames[i] = p.Name
		}
		mg.Report.prov(obs.Provenance{
			Stage:      "clock_refine",
			Rule:       "§3.1.8 clock refinement",
			Action:     obs.ActionInsert,
			Constraint: "set_clock_sense -stop_propagation",
			Clocks:     []string{f.Clock},
			Pins:       pinNames,
			Detail:     "no individual mode propagates the clock past these pins",
		})
	}
	if len(frontiers) > 0 {
		return mg.rebuildMerged()
	}
	return nil
}

// dataRefinement implements §3.2: first block launch clocks that no
// individual mode produces (emitting scoped false paths), then run the
// 3-pass timing-relationship comparison, adding corrective false paths
// until the merged mode matches the per-path most-restrictive individual
// behaviour.
func (mg *Merger) dataRefinement(cx context.Context, sp *obs.Span) error {
	bsp := sp.Child("launch_blocking")
	err := mg.blockExtraLaunchClocks()
	bsp.Add("launch_blocks", int64(mg.Report.LaunchBlocks))
	bsp.Finish()
	if err != nil {
		return err
	}
	for iter := 0; iter < mg.opt.MaxRefineIterations; iter++ {
		if err := cx.Err(); err != nil {
			return err
		}
		mg.Report.Iterations = iter + 1
		isp := sp.Child(fmt.Sprintf("iteration_%d", iter+1))
		added, err := mg.threePass(cx, isp)
		isp.Add("constraints_added", int64(added))
		isp.Finish()
		if err != nil {
			return err
		}
		if added == 0 {
			return nil
		}
		if err := mg.rebuildMergedForRefine(); err != nil {
			return err
		}
	}
	mg.Report.warnf("refinement did not converge in %d iterations", mg.opt.MaxRefineIterations)
	return nil
}

// blockExtraLaunchClocks is §3.2's first data refinement step, run at arc
// granularity: a launch clock's data may cross an arc in the merged mode
// only if it does so in at least one individual mode.
func (mg *Merger) blockExtraLaunchClocks() error {
	// The justification callbacks run once per arc per clock, so resolve
	// the merged→local clock mapping and each mode's launch-clock presence
	// up front; the callbacks reduce to array lookups.
	mergedNames := mg.mctx.AllClockNames()
	mergedIdx := make(map[string]int, len(mergedNames))
	for i, n := range mergedNames {
		mergedIdx[n] = i
	}
	launchAt := make([][][]bool, len(mg.ctxs))
	for m, ctx := range mg.ctxs {
		locals := make([]string, len(mergedNames))
		for i, mc := range mergedNames {
			locals[i] = mg.cmap.localName(mc, m)
		}
		launchAt[m] = ctx.LaunchClockTable(locals)
	}
	seedJustify := func(node graph.NodeID, mergedClock string) bool {
		idx := mergedIdx[mergedClock]
		for m := range mg.ctxs {
			if row := launchAt[m][idx]; row != nil && row[node] {
				return true
			}
		}
		return false
	}
	arcJustify := func(ai int32, mergedClock string) bool {
		idx := mergedIdx[mergedClock]
		from := mg.g.Arc(ai).From
		for m, ctx := range mg.ctxs {
			if row := launchAt[m][idx]; row != nil && row[from] && !ctx.ArcDisabledAt(ai) {
				return true
			}
		}
		return false
	}
	frontiers := mg.mctx.ExtraLaunchFlows(seedJustify, arcJustify)
	for _, f := range frontiers {
		if len(f.Nodes) > 0 {
			through := &sdc.PointList{Pins: mg.nodeRefs(f.Nodes)}
			e := &sdc.Exception{
				Kind:     sdc.FalsePath,
				From:     &sdc.PointList{Clocks: []string{f.Clock}},
				Throughs: []*sdc.PointList{through},
				To:       &sdc.PointList{},
				Comment:  "inferred by data refinement (unjustified launch clock)",
			}
			mg.merged.Exceptions = append(mg.merged.Exceptions, e)
			mg.Report.LaunchBlocks += len(f.Nodes)
			mg.provException("data_refine/launch_blocking",
				"§3.2 launch clock blocking", e, f.Clock,
				"no individual mode launches this clock at these pins")
		}
		for _, pair := range f.Arcs {
			e := &sdc.Exception{
				Kind: sdc.FalsePath,
				From: &sdc.PointList{Clocks: []string{f.Clock}},
				Throughs: []*sdc.PointList{
					{Pins: mg.nodeRefs(pair[:1])},
					{Pins: mg.nodeRefs(pair[1:])},
				},
				To:      &sdc.PointList{},
				Comment: "inferred by data refinement (unjustified launch flow)",
			}
			mg.merged.Exceptions = append(mg.merged.Exceptions, e)
			mg.Report.LaunchBlocks++
			mg.provException("data_refine/launch_blocking",
				"§3.2 launch clock blocking", e, f.Clock,
				"no individual mode drives this clock across the arc")
		}
	}
	if len(frontiers) > 0 {
		return mg.rebuildMergedExcOnly()
	}
	return nil
}

// provException records provenance for one refinement-inserted exception,
// rendering the exact SDC command it contributes to the merged mode.
func (mg *Merger) provException(stage, rule string, e *sdc.Exception, clock, detail string) {
	p := obs.Provenance{
		Stage:      stage,
		Rule:       rule,
		Action:     obs.ActionInsert,
		Constraint: sdc.WriteException(e),
		Detail:     detail,
	}
	if clock != "" {
		p.Clocks = []string{clock}
	}
	mg.Report.prov(p)
}

// nodeRefs converts graph nodes to pin/port references, sorted by name.
func (mg *Merger) nodeRefs(nodes []graph.NodeID) []sdc.ObjRef {
	refs := make([]sdc.ObjRef, 0, len(nodes))
	for _, n := range nodes {
		node := mg.g.Node(n)
		kind := sdc.PinObj
		if node.Port != nil {
			kind = sdc.PortObj
		}
		refs = append(refs, sdc.ObjRef{Kind: kind, Name: node.Name})
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Name < refs[j].Name })
	return refs
}

// groupStates is the per-path-group comparison input: the per-mode state
// sets (merged clock namespace) and the merged mode's state set.
type groupStates struct {
	perMode []relation.Set // indexed by mode; zero set = group absent
	merged  relation.Set
}

// mergedTimes reports whether the merged mode actually times the group
// (non-empty and not purely false).
func mergedTimes(gs *groupStates) bool {
	return !gs.merged.Empty() && !gs.merged.Equal(relation.NewSet(relation.StateFalse))
}

// target computes the merged-target state set: for singleton per-mode
// sets, the most restrictive state across modes (absent = not timed =
// false). Multi-state mode sets make the group ambiguous (nil, false).
func (gs *groupStates) target() (relation.Set, bool) {
	states := make([]relation.State, 0, len(gs.perMode))
	for _, set := range gs.perMode {
		if set.Empty() {
			states = append(states, relation.StateFalse)
			continue
		}
		st, single := set.Single()
		if !single {
			return relation.Set{}, false
		}
		states = append(states, st)
	}
	return relation.NewSet(relation.MergeTarget(states)), true
}

// mapRelKey rewrites a mode-local relation key into the merged clock
// namespace.
func (mg *Merger) mapRelKey(m int, k sta.RelKey) sta.RelKey {
	k.Launch = mg.cmap.mapName(m, k.Launch)
	k.Capture = mg.cmap.mapName(m, k.Capture)
	return k
}

// gatherGroups aligns relation maps of all modes and the merged mode.
// groupStates and their per-mode slices carve out of block arenas — one
// gather allocates a handful of blocks instead of two tiny objects per
// path group.
func (mg *Merger) gatherGroups(perMode []map[sta.RelKey]relation.Set, merged map[sta.RelKey]relation.Set) map[sta.RelKey]*groupStates {
	nModes := len(perMode) // one entry per scenario context, not per base mode
	// First arena block sized to the expected group count (the merged map
	// is normally the union key space); per-endpoint gathers hold a few
	// dozen groups, so a fixed-size block would mostly be waste.
	blockSize := len(merged) + 8
	out := make(map[sta.RelKey]*groupStates, blockSize)
	var gsArena []groupStates
	var setArena []relation.Set
	get := func(k sta.RelKey) *groupStates {
		gs := out[k]
		if gs == nil {
			if len(gsArena) == 0 {
				gsArena = make([]groupStates, blockSize)
				setArena = make([]relation.Set, blockSize*nModes)
			}
			gs = &gsArena[0]
			gsArena = gsArena[1:]
			gs.perMode = setArena[:nModes:nModes]
			setArena = setArena[nModes:]
			out[k] = gs
		}
		return gs
	}
	for m, rels := range perMode {
		for k, set := range rels {
			mk := mg.mapRelKey(m, k)
			gs := get(mk)
			gs.perMode[m].AddSet(set)
		}
	}
	for k, set := range merged {
		get(k).merged = set
	}
	return out
}

// nameSet accumulates deduplicated names with deterministic extraction.
// The refinement passes and the equivalence checker share it for
// collecting the endpoints forwarded to the next pass.
type nameSet map[string]bool

func (s nameSet) add(name string) { s[name] = true }

// sorted returns the names in ascending order.
func (s nameSet) sorted() []string {
	out := make([]string, 0, len(s))
	for name := range s {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// sortedRelKeys extracts a relation (or group) map's keys in the
// canonical end/start/launch/capture/check order, so per-endpoint
// classification visits groups deterministically instead of in map
// order.
func sortedRelKeys[V any](m map[sta.RelKey]V) []sta.RelKey {
	keys := make([]sta.RelKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sta.SortRelKeys(keys)
	return keys
}

// relGranularity selects which fingerprint memo an endpoint prune
// consults: pass-1 (endpoint) or pass-2 (start–end) relation maps.
type relGranularity int

const (
	granEndpoint relGranularity = iota
	granStartEnd
)

// relFP is one memoized endpoint fingerprint: the canonical hash of the
// endpoint's relation map (sta.RelationFingerprint) plus whether every
// state set in it is a singleton.
type relFP struct {
	hash   string
	single bool
}

// epOutcome records one endpoint's complete pass-1 (or pass-2) effect in
// an iteration that produced no fixes for it: the report-counter deltas
// and what it forwarded to the next pass. An unaffected endpoint — not
// forward-reachable from any exception added since — classifies
// identically in the next iteration (member relations never change and
// its merged relations are untouched), so the recorded outcome replays
// without recomputing or even touching the relation maps. Endpoints that
// produced fixes never replay: a fix's pins always include the endpoint
// itself, so it lands in the invalidation frontier.
type epOutcome struct {
	ambiguous, mismatch, pessim int
	pruned                      bool
	forwarded                   bool     // pass 1: endpoint goes to pass 2
	forwardStarts               []string // pass 2: starts forwarded to pass 3
}

// pairOutcome is the pass-3 analogue for one (start, end) pair that
// emitted nothing.
type pairOutcome struct {
	mismatch, pessim int
}

// refineMemo carries refinement state across iterations of the 3-pass
// loop. Member-mode fingerprints stay valid for the whole merge (member
// contexts never change); merged-mode fingerprints and recorded
// endpoint/pair outcomes are dropped per endpoint when new exceptions
// invalidate them (rebuildMergedForRefine). pending collects the
// exceptions added since the last merged rebuild — their pins define the
// invalidation frontier.
type refineMemo struct {
	mu       sync.Mutex
	memberP1 []map[graph.NodeID]relFP
	memberSE []map[graph.NodeID]relFP
	mergedP1 map[graph.NodeID]relFP
	mergedSE map[graph.NodeID]relFP
	pending  []*sdc.Exception

	p1Out map[graph.NodeID]*epOutcome
	p2Out map[graph.NodeID]*epOutcome
	p3Out map[[2]graph.NodeID]*pairOutcome

	viableOnce sync.Once
	viable     bool
}

// table returns (creating lazily) the fingerprint table for context m at
// the given granularity; m == nModes addresses the merged context.
func (mm *refineMemo) table(m int, gran relGranularity, nModes int) map[graph.NodeID]relFP {
	if m == nModes {
		if gran == granEndpoint {
			if mm.mergedP1 == nil {
				mm.mergedP1 = map[graph.NodeID]relFP{}
			}
			return mm.mergedP1
		}
		if mm.mergedSE == nil {
			mm.mergedSE = map[graph.NodeID]relFP{}
		}
		return mm.mergedSE
	}
	tables := &mm.memberP1
	if gran == granStartEnd {
		tables = &mm.memberSE
	}
	if *tables == nil {
		*tables = make([]map[graph.NodeID]relFP, nModes)
	}
	if (*tables)[m] == nil {
		(*tables)[m] = map[graph.NodeID]relFP{}
	}
	return (*tables)[m]
}

// dropMerged invalidates merged-mode state — fingerprints and recorded
// outcomes: all of it when affected is nil, otherwise only the endpoints
// marked affected.
func (mm *refineMemo) dropMerged(affected []bool) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if affected == nil {
		mm.mergedP1, mm.mergedSE = nil, nil
		mm.p1Out, mm.p2Out, mm.p3Out = nil, nil, nil
		return
	}
	for _, tbl := range []map[graph.NodeID]relFP{mm.mergedP1, mm.mergedSE} {
		for end := range tbl {
			if affected[end] {
				delete(tbl, end)
			}
		}
	}
	for _, tbl := range []map[graph.NodeID]*epOutcome{mm.p1Out, mm.p2Out} {
		for end := range tbl {
			if affected[end] {
				delete(tbl, end)
			}
		}
	}
	for pair := range mm.p3Out {
		if affected[pair[1]] {
			delete(mm.p3Out, pair)
		}
	}
}

// record helpers: outcomes are written by the sequential classification
// phases and read by the next iteration's parallel phases, so plain map
// access with lazy init suffices (no concurrent writers).

func (mm *refineMemo) recordP1(end graph.NodeID, o *epOutcome) {
	if mm.p1Out == nil {
		mm.p1Out = map[graph.NodeID]*epOutcome{}
	}
	mm.p1Out[end] = o
}

func (mm *refineMemo) recordP2(end graph.NodeID, o *epOutcome) {
	if mm.p2Out == nil {
		mm.p2Out = map[graph.NodeID]*epOutcome{}
	}
	mm.p2Out[end] = o
}

func (mm *refineMemo) recordP3(pair [2]graph.NodeID, o *pairOutcome) {
	if mm.p3Out == nil {
		mm.p3Out = map[[2]graph.NodeID]*pairOutcome{}
	}
	mm.p3Out[pair] = o
}

// mapModeRels rewrites a mode-local relation map into the merged clock
// namespace (two local keys may collapse onto one merged key; their sets
// union, exactly as gatherGroups would accumulate them).
func (mg *Merger) mapModeRels(m int, rels map[sta.RelKey]relation.Set) map[sta.RelKey]relation.Set {
	out := make(map[sta.RelKey]relation.Set, len(rels))
	for k, set := range rels {
		mk := mg.mapRelKey(m, k)
		cur := out[mk]
		cur.AddSet(set)
		out[mk] = cur
	}
	return out
}

// endpointFP returns the memoized relation fingerprint of one endpoint in
// context m (m == len(ctxs) is the merged context) at the given
// granularity. Member maps are fingerprinted in the merged clock
// namespace so they compare across modes and against the merged mode.
func (mg *Merger) endpointFP(m int, end graph.NodeID, gran relGranularity) relFP {
	mm := &mg.memo
	mm.mu.Lock()
	tbl := mm.table(m, gran, len(mg.ctxs))
	if fp, ok := tbl[end]; ok {
		mm.mu.Unlock()
		return fp
	}
	mm.mu.Unlock()
	var rels map[sta.RelKey]relation.Set
	switch {
	case m == len(mg.ctxs) && gran == granEndpoint:
		rels = mg.mctx.EndpointRelationsAt(end)
	case m == len(mg.ctxs):
		rels = mg.mctx.StartEndRelations(end)
	case gran == granEndpoint:
		rels = mg.mapModeRels(m, mg.ctxs[m].EndpointRelationsAt(end))
	default:
		rels = mg.mapModeRels(m, mg.ctxs[m].StartEndRelations(end))
	}
	hash, single := sta.RelationFingerprint(rels)
	fp := relFP{hash: hash, single: single}
	mm.mu.Lock()
	mm.table(m, gran, len(mg.ctxs))[end] = fp
	mm.mu.Unlock()
	return fp
}

// pruneViable reports (computed once per merge) whether the cross-mode
// fingerprint prune can ever fire: relation maps compare in the merged
// clock namespace, so two modes' maps can only be key-equal when both
// modes' clocks map onto the same merged clock-name set. Modes whose
// clocks stay apart in the union (different periods or waveforms) can
// never agree at any endpoint that has relations — fingerprinting them
// is pure overhead, and the prune short-circuits to "not prunable".
func (mg *Merger) pruneViable() bool {
	mm := &mg.memo
	mm.viableOnce.Do(func() {
		var ref map[string]bool
		for m, ctx := range mg.ctxs {
			set := map[string]bool{}
			for _, ci := range ctx.Clocks {
				set[mg.cmap.mapName(m, ci.Def.Name)] = true
			}
			if m == 0 {
				ref = set
				continue
			}
			if len(set) != len(ref) {
				return
			}
			for name := range set {
				if !ref[name] {
					return
				}
			}
		}
		mm.viable = true
	})
	return mm.viable
}

// pruneEndpoint reports whether an endpoint provably produces no
// counters, no forwarding, and no fixes in a comparison pass, so the
// pass can skip it without changing a single output byte. That holds
// exactly when every mode's relation map (merged namespace) is the same
// all-singleton map AND the merged mode's map equals it too: then every
// path group's target is its own merged state — Compare returns Match
// for all of them, which is the one classification with zero side
// effects. Identical-but-multi-state maps are NOT prunable (the slow
// path counts them ambiguous and forwards the endpoint).
func (mg *Merger) pruneEndpoint(end graph.NodeID, gran relGranularity) bool {
	first := mg.endpointFP(0, end, gran)
	if !first.single {
		return false
	}
	for m := 1; m < len(mg.ctxs); m++ {
		if mg.endpointFP(m, end, gran).hash != first.hash {
			return false
		}
	}
	if mg.opt.Inject.PruneSkipDifferingEndpoints {
		// Injected bug: agreement between the members alone "justifies"
		// the prune — the merged mode is never consulted, so a merged
		// context that relaxes the members' common relation (optimism)
		// slips through unfixed.
		return true
	}
	return mg.endpointFP(len(mg.ctxs), end, gran).hash == first.hash
}

// prunePair reports whether a pass-3 pair provably emits nothing: every
// context's live start→end cone is divergence-free (at most one live
// out-arc per node ⇒ a single live chain), and all contexts with a live
// path share the same chain. Then every interior node lies on every live
// path, its per-context state sets replicate the pair's pass-2 sets, and
// the through-point scan can only rediscover the pass-2 ambiguity that
// forwarded the pair — hitting `continue` at every node. Reconvergent
// cones (the case pass 3 exists for) are Divergent somewhere and are
// never pruned.
func (mg *Merger) prunePair(startID, endID graph.NodeID) bool {
	var ref sta.PairProfile
	have := false
	for m := 0; m <= len(mg.ctxs); m++ {
		ctx := mg.mctx
		if m < len(mg.ctxs) {
			ctx = mg.ctxs[m]
		}
		p := ctx.PairProfile(startID, endID)
		if p.Divergent {
			return false
		}
		if !p.HasLive {
			continue
		}
		if !have {
			ref, have = p, true
			continue
		}
		if p.LiveHash != ref.LiveHash {
			return false
		}
	}
	return true
}

// warmContexts decides, per context and in parallel, whether to force the
// shared propagation the coming pass reads (the pass-1 tag propagation at
// granEndpoint, the start-tracked propagation at granStartEnd). A context
// with enough cold endpoints amortizes one full-design propagation; a
// context missing only a few (a later iteration's invalidation frontier)
// skips the warm, and those misses are served by per-endpoint cone
// propagations instead — identical results either way (see relcache.go).
func (mg *Merger) warmContexts(cx context.Context, ends []graph.NodeID, gran relGranularity) {
	forEachParallel(cx, len(mg.ctxs)+1, mg.opt.parallelism(), func(m int) {
		ctx := mg.mctx
		if m < len(mg.ctxs) {
			ctx = mg.ctxs[m]
		}
		var missing int
		if gran == granEndpoint {
			missing = ctx.MissingEndpointRelations(ends)
		} else {
			missing = ctx.MissingStartEndRelations(ends)
		}
		if missing == 0 || missing*4 <= len(ends) && missing < 32 {
			return
		}
		if gran == granEndpoint {
			// Deliberately NOT the start-tracked propagation: pass 2 only
			// needs start tracking at the endpoints pass 1 leaves ambiguous,
			// and cone propagations serve those far cheaper than a full
			// start-tracked run when the ambiguous set is small.
			ctx.WarmEndpointRelations()
		} else {
			ctx.WarmStartRelations()
		}
	})
}

// threePass runs passes 1–3 of §3.2 once, emitting corrective false
// paths; it returns how many constraints were added. Cancelling cx
// aborts between and inside the passes with the context error.
func (mg *Merger) threePass(cx context.Context, sp *obs.Span) (int, error) {
	added := 0

	// ---- Pass 1: endpoint granularity ----
	p1 := sp.Child("pass1")
	ends := mg.g.Endpoints()
	mg.warmContexts(cx, ends, granEndpoint)
	if err := cx.Err(); err != nil {
		p1.Finish()
		return 0, err
	}
	usePrune := !mg.opt.Slow.NoEndpointPrune && mg.pruneViable()
	// Per-endpoint gather (and prune fingerprinting) runs in parallel;
	// classification and fix emission stay sequential, in graph endpoint
	// order with sorted keys, so emitted constraints and counters are
	// deterministic. Endpoints with a recorded outcome from the previous
	// iteration replay it without touching any relation map.
	type endpointWork struct {
		replay *epOutcome
		pruned bool
		groups map[sta.RelKey]*groupStates
		keys   []sta.RelKey
	}
	work := make([]endpointWork, len(ends))
	forEachParallel(cx, len(ends), mg.opt.parallelism(), func(i int) {
		endID := ends[i]
		if o := mg.memo.p1Out[endID]; o != nil {
			work[i].replay = o
			return
		}
		if usePrune && mg.pruneEndpoint(endID, granEndpoint) {
			work[i].pruned = true
			return
		}
		perMode := make([]map[sta.RelKey]relation.Set, len(mg.ctxs))
		for m, ctx := range mg.ctxs {
			perMode[m] = ctx.EndpointRelationsAt(endID)
		}
		work[i].groups = mg.gatherGroups(perMode, mg.mctx.EndpointRelationsAt(endID))
		work[i].keys = sortedRelKeys(work[i].groups)
	})
	if err := cx.Err(); err != nil {
		p1.Finish()
		return 0, err
	}
	// Pruned and replayed endpoints' groups are absent from `groups`, as
	// are those of computed endpoints without fixes. That is safe for
	// emitFixes: its closure checks only ever look up groups at the
	// endpoints of the fixes themselves, and fix endpoints' groups are all
	// present.
	groups := map[sta.RelKey]*groupStates{}
	pass2 := nameSet{} // ambiguous endpoints forwarded to pass 2
	var p1Fixes []fixEntry
	p1Groups, p1Pruned, p1Replayed := 0, 0, 0
	for i := range work {
		endID := ends[i]
		if o := work[i].replay; o != nil {
			p1Replayed++
			mg.Report.Pass1Ambiguous += o.ambiguous
			mg.Report.Pass1Mismatch += o.mismatch
			mg.Report.PessimisticGroups += o.pessim
			if o.pruned {
				p1Pruned++
			}
			if o.forwarded {
				pass2.add(mg.g.Node(endID).Name)
			}
			continue
		}
		if work[i].pruned {
			p1Pruned++
			mg.memo.recordP1(endID, &epOutcome{pruned: true})
			continue
		}
		o := &epOutcome{}
		var endFixes []fixEntry
		for _, key := range work[i].keys {
			gs := work[i].groups[key]
			target, ok := gs.target()
			if !ok {
				o.ambiguous++
				o.forwarded = true
				continue
			}
			switch relation.Compare(target, gs.merged) {
			case relation.Match:
			case relation.Mismatch:
				o.mismatch++
				if f, ok := fixFor(key, target, gs.merged); ok {
					endFixes = append(endFixes, f)
				} else {
					o.pessim++
				}
			case relation.Ambiguous:
				o.ambiguous++
				o.forwarded = true
			}
		}
		p1Groups += len(work[i].keys)
		mg.Report.Pass1Ambiguous += o.ambiguous
		mg.Report.Pass1Mismatch += o.mismatch
		mg.Report.PessimisticGroups += o.pessim
		if o.forwarded {
			pass2.add(mg.g.Node(endID).Name)
		}
		if len(endFixes) > 0 {
			p1Fixes = append(p1Fixes, endFixes...)
			for k, gs := range work[i].groups {
				groups[k] = gs
			}
		} else {
			// Fixless outcome: replayable next iteration while the endpoint
			// stays outside the invalidation frontier. (Fix endpoints never
			// replay — their own pins invalidate them.)
			mg.memo.recordP1(endID, o)
		}
	}
	added += mg.emitFixes(p1Fixes, groups, "data_refine/pass1", "§3.2 pass-1 endpoint comparison")
	p1.Add("path_groups", int64(p1Groups))
	p1.Add("fixes", int64(len(p1Fixes)))
	p1.Add("pruned_endpoints", int64(p1Pruned))
	p1.Add("replayed_endpoints", int64(p1Replayed))
	p1.Finish()

	// ---- Pass 2: startpoint–endpoint granularity ----
	p2 := sp.Child("pass2")
	pass2Ends := pass2.sorted()
	pass2IDs := make([]graph.NodeID, len(pass2Ends))
	for i, name := range pass2Ends {
		id, ok := mg.g.NodeByName(name)
		if !ok {
			p2.Finish()
			return added, fmt.Errorf("internal: endpoint %q not in graph", name)
		}
		pass2IDs[i] = id
	}
	if len(pass2IDs) > 0 {
		// One shared start-tracked propagation per context replaces the
		// per-endpoint cone propagations when enough endpoints are cold;
		// warm it in parallel before the endpoint loop fans out.
		mg.warmContexts(cx, pass2IDs, granStartEnd)
	}
	type sePair struct{ start, end string }
	pass3 := map[sePair]bool{}
	// Per-endpoint relations (and prune fingerprints) compute in parallel
	// (contexts are safe for concurrent relation queries); comparison
	// stays sequential and deterministic. Fixes and fix endpoints' groups
	// accumulate across endpoints so the emission step can aggregate
	// clock-pair kills into few constraints (keys are unique per endpoint,
	// so merging the maps is safe).
	seWork := make([]endpointWork, len(pass2IDs))
	forEachParallel(cx, len(pass2IDs), mg.opt.parallelism(), func(i int) {
		endID := pass2IDs[i]
		if o := mg.memo.p2Out[endID]; o != nil {
			seWork[i].replay = o
			return
		}
		if usePrune && mg.pruneEndpoint(endID, granStartEnd) {
			seWork[i].pruned = true
			return
		}
		perModeSE := make([]map[sta.RelKey]relation.Set, len(mg.ctxs))
		for m, ctx := range mg.ctxs {
			perModeSE[m] = ctx.StartEndRelations(endID)
		}
		seWork[i].groups = mg.gatherGroups(perModeSE, mg.mctx.StartEndRelations(endID))
		seWork[i].keys = sortedRelKeys(seWork[i].groups)
	})
	if err := cx.Err(); err != nil {
		p2.Finish()
		return added, err
	}
	allSEGroups := map[sta.RelKey]*groupStates{}
	var p2Fixes []fixEntry
	p2Groups, p2Pruned, p2Replayed := 0, 0, 0
	for i := range seWork {
		endID := pass2IDs[i]
		endName := pass2Ends[i]
		if o := seWork[i].replay; o != nil {
			p2Replayed++
			mg.Report.Pass2Ambiguous += o.ambiguous
			mg.Report.Pass2Mismatch += o.mismatch
			mg.Report.PessimisticGroups += o.pessim
			if o.pruned {
				p2Pruned++
			}
			for _, start := range o.forwardStarts {
				pass3[sePair{start, endName}] = true
			}
			continue
		}
		if seWork[i].pruned {
			p2Pruned++
			mg.memo.recordP2(endID, &epOutcome{pruned: true})
			continue
		}
		o := &epOutcome{}
		var endFixes []fixEntry
		for _, key := range seWork[i].keys {
			gs := seWork[i].groups[key]
			target, ok := gs.target()
			if !ok {
				o.ambiguous++
				o.forwardStarts = append(o.forwardStarts, key.Start)
				pass3[sePair{key.Start, key.End}] = true
				continue
			}
			switch relation.Compare(target, gs.merged) {
			case relation.Match:
			case relation.Mismatch:
				o.mismatch++
				if f, ok := fixFor(key, target, gs.merged); ok {
					endFixes = append(endFixes, f)
				} else {
					o.pessim++
				}
			case relation.Ambiguous:
				o.ambiguous++
				o.forwardStarts = append(o.forwardStarts, key.Start)
				pass3[sePair{key.Start, key.End}] = true
			}
		}
		p2Groups += len(seWork[i].keys)
		mg.Report.Pass2Ambiguous += o.ambiguous
		mg.Report.Pass2Mismatch += o.mismatch
		mg.Report.PessimisticGroups += o.pessim
		if len(endFixes) > 0 {
			p2Fixes = append(p2Fixes, endFixes...)
			for k, gs := range seWork[i].groups {
				allSEGroups[k] = gs
			}
		} else {
			mg.memo.recordP2(endID, o)
		}
	}
	added += mg.emitFixes(p2Fixes, allSEGroups, "data_refine/pass2", "§3.2 pass-2 start-end comparison")
	p2.Add("endpoints", int64(len(pass2Ends)))
	p2.Add("path_groups", int64(p2Groups))
	p2.Add("fixes", int64(len(p2Fixes)))
	p2.Add("pruned_endpoints", int64(p2Pruned))
	p2.Add("replayed_endpoints", int64(p2Replayed))
	p2.Finish()

	// ---- Pass 3: through-point granularity ----
	p3 := sp.Child("pass3")
	defer p3.Finish()
	var pairs []sePair
	for p := range pass3 {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].start != pairs[j].start {
			return pairs[i].start < pairs[j].start
		}
		return pairs[i].end < pairs[j].end
	})
	// Relations per pair (and reconvergence prunes) compute in parallel;
	// comparison and constraint emission stay sequential and
	// deterministic.
	usePairPrune := !mg.opt.Slow.NoPairPrune
	type p3data struct {
		perMode [][]sta.ThroughRel
		merged  []sta.ThroughRel
		ids     [2]graph.NodeID
		replay  *pairOutcome
		skip    bool
		err     error
	}
	data := make([]p3data, len(pairs))
	forEachParallel(cx, len(pairs), mg.opt.parallelism(), func(i int) {
		startID, ok1 := mg.g.NodeByName(pairs[i].start)
		endID, ok2 := mg.g.NodeByName(pairs[i].end)
		if !ok1 || !ok2 {
			data[i].err = fmt.Errorf("internal: pass-3 pair %s→%s not in graph", pairs[i].start, pairs[i].end)
			return
		}
		data[i].ids = [2]graph.NodeID{startID, endID}
		if o := mg.memo.p3Out[data[i].ids]; o != nil {
			data[i].replay = o
			return
		}
		if usePairPrune && mg.prunePair(startID, endID) {
			data[i].skip = true
			return
		}
		perMode := make([][]sta.ThroughRel, len(mg.ctxs))
		for m, ctx := range mg.ctxs {
			perMode[m] = ctx.ThroughRelations(startID, endID)
		}
		data[i].perMode = perMode
		data[i].merged = mg.mctx.ThroughRelations(startID, endID)
	})
	if err := cx.Err(); err != nil {
		return added, err
	}
	p3Pruned, p3Replayed := 0, 0
	for i, p := range pairs {
		if data[i].err != nil {
			return added, data[i].err
		}
		if o := data[i].replay; o != nil {
			p3Replayed++
			mg.Report.Pass3Mismatch += o.mismatch
			mg.Report.PessimisticGroups += o.pessim
			continue
		}
		if data[i].skip {
			p3Pruned++
			continue
		}
		mis0, pes0 := mg.Report.Pass3Mismatch, mg.Report.PessimisticGroups
		n, err := mg.pass3(p.start, p.end, data[i].perMode, data[i].merged)
		if err != nil {
			return added, err
		}
		added += n
		if n == 0 {
			// An emitting pair invalidates its own endpoint (the fix pins
			// include it); only silent pairs are replayable.
			mg.memo.recordP3(data[i].ids, &pairOutcome{
				mismatch: mg.Report.Pass3Mismatch - mis0,
				pessim:   mg.Report.PessimisticGroups - pes0,
			})
		}
	}
	p3.Add("pairs", int64(len(pairs)))
	p3.Add("pruned_pairs", int64(p3Pruned))
	p3.Add("replayed_pairs", int64(p3Replayed))
	return added, nil
}

// fixEntry is one corrective constraint request: a mismatching path group
// plus the target state the merged mode must be brought to (StateFalse →
// a false path, Multicycle → a multicycle path, Max/MinDelay → a delay
// bound).
type fixEntry struct {
	key   sta.RelKey
	state relation.State
}

// fixFor decides whether a pass-1/2 mismatch is correctable. Two cases
// get a corrective constraint:
//
//   - the target is false (the merged mode times paths no mode times —
//     the paper's accuracy fix, a corrective false path), or
//   - the merged state relaxes the target (e.g. a kept MCP(3) where one
//     mode demands MCP(2) — a sign-off safety fix, a corrective
//     exception of the target state).
//
// Remaining differences leave the merged mode tighter than needed, which
// is sign-off safe and only counted.
func fixFor(key sta.RelKey, target, merged relation.Set) (fixEntry, bool) {
	ts, ok1 := target.Single()
	ms, ok2 := merged.Single()
	if !ok1 || !ok2 {
		return fixEntry{}, false
	}
	if ts != relation.StateFalse && !relation.Relaxed(ms, ts) {
		return fixEntry{}, false
	}
	return fixEntry{key: key, state: ts}, true
}

// fixException builds the corrective exception skeleton for a target
// state and check side.
func fixException(state relation.State, check relation.CheckType) *sdc.Exception {
	e := &sdc.Exception{From: &sdc.PointList{}, To: &sdc.PointList{},
		Comment: "inferred by relationship refinement", Multiplier: 1}
	switch state.Kind {
	case relation.Multicycle:
		e.Kind = sdc.MulticyclePath
		e.Multiplier = state.Mult
	case relation.MaxDelayK:
		e.Kind = sdc.MaxDelay
		e.Value = state.Value
	case relation.MinDelayK:
		e.Kind = sdc.MinDelay
		e.Value = state.Value
	default:
		e.Kind = sdc.FalsePath
	}
	switch check {
	case relation.Setup:
		e.SetupHold = sdc.MaxOnly
	case relation.Hold:
		e.SetupHold = sdc.MinOnly
	}
	return e
}

// emitFixes turns mismatch entries into corrective constraints, keeping
// the output compact without ever widening a constraint beyond its fixed
// path groups:
//
//   - Entries sharing (launch, capture, check, target state) aggregate
//     into one exception -from [launch] -through {startpoints} -through
//     {endpoints} -to [capture] when the fixed set is the full
//     startpoints×endpoints cartesian product; otherwise one exception
//     per startpoint carries exactly its endpoints.
//   - Pass-1 entries (start "*") aggregate over endpoints only.
//   - Corrective setup and hold twins collapse into one unrestricted
//     exception (see addFalsePath).
func (mg *Merger) emitFixes(fixes []fixEntry, groups map[sta.RelKey]*groupStates, stage, rule string) int {
	if len(fixes) == 0 {
		return 0
	}

	// Step 1: when every (launch, capture) pair the merged mode times
	// between one start and one end mismatches with the same false
	// target, one unscoped false path covers the whole group — the
	// paper's "set_false_path -to rX/D" CSTR1 form. The check is safe
	// here because `groups` contains every pair of the group.
	type groupID struct{ start, end string }
	fixedKeys := map[sta.RelKey]bool{}
	for _, f := range fixes {
		fixedKeys[f.key] = true
	}
	groupOK := map[groupID]bool{}
	for _, f := range fixes {
		if f.state == relation.StateFalse {
			groupOK[groupID{f.key.Start, f.key.End}] = true
		}
	}
	// One pass over all groups: any validly timed, unfixed pair disables
	// its (start, end) group.
	for gk, gs := range groups {
		gid := groupID{gk.Start, gk.End}
		if ok, interesting := groupOK[gid]; !interesting || !ok {
			continue
		}
		if gs.merged.Empty() {
			continue
		}
		if !fixedKeys[gk] && !gs.merged.Equal(relation.NewSet(relation.StateFalse)) {
			groupOK[gid] = false
		}
	}
	added := 0
	var rest []fixEntry
	emittedGroup := map[groupID]bool{}
	for _, f := range fixes {
		gid := groupID{f.key.Start, f.key.End}
		if f.state == relation.StateFalse && groupOK[gid] {
			if !emittedGroup[gid] {
				emittedGroup[gid] = true
				e := &sdc.Exception{
					Kind:    sdc.FalsePath,
					From:    &sdc.PointList{},
					To:      &sdc.PointList{Pins: []sdc.ObjRef{mg.objRefFor(gid.end)}},
					Comment: "inferred by relationship refinement",
				}
				if gid.start != "*" && gid.start != "" {
					e.From = &sdc.PointList{Pins: []sdc.ObjRef{mg.objRefFor(gid.start)}}
				}
				mg.addFalsePath(e, stage, rule,
					"every clock pair timed through this path group mismatches with a false target")
				added++
			}
			continue
		}
		rest = append(rest, f)
	}
	fixes = rest
	if len(fixes) == 0 {
		return added
	}
	type aggKey struct {
		launch, capture string
		check           relation.CheckType
		state           relation.State
	}
	byAgg := map[aggKey][]fixEntry{}
	var order []aggKey
	for _, f := range fixes {
		k := aggKey{f.key.Launch, f.key.Capture, f.key.Check, f.state}
		if _, seen := byAgg[k]; !seen {
			order = append(order, k)
		}
		byAgg[k] = append(byAgg[k], f)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.launch != b.launch {
			return a.launch < b.launch
		}
		if a.capture != b.capture {
			return a.capture < b.capture
		}
		if a.check != b.check {
			return a.check < b.check
		}
		return a.state.String() < b.state.String()
	})

	emit := func(k aggKey, starts, ends []string) {
		e := fixException(k.state, k.check)
		e.From = &sdc.PointList{Clocks: []string{k.launch}}
		e.To = &sdc.PointList{Clocks: []string{k.capture}}
		if len(starts) > 0 {
			refs := make([]sdc.ObjRef, 0, len(starts))
			for _, s := range starts {
				refs = append(refs, mg.objRefFor(s))
			}
			e.Throughs = append(e.Throughs, &sdc.PointList{Pins: refs})
		}
		refs := make([]sdc.ObjRef, 0, len(ends))
		for _, s := range ends {
			refs = append(refs, mg.objRefFor(s))
		}
		e.Throughs = append(e.Throughs, &sdc.PointList{Pins: refs})
		mg.addFalsePath(e, stage, rule,
			"merged mode relaxes the most restrictive individual-mode relation")
		added++
	}

	for _, k := range order {
		entries := byAgg[k]
		starts := map[string]bool{}
		ends := map[string]bool{}
		pairs := map[[2]string]bool{}
		for _, f := range entries {
			start := f.key.Start
			if start == "*" {
				start = ""
			}
			starts[start] = true
			ends[f.key.End] = true
			pairs[[2]string{start, f.key.End}] = true
		}
		sortedKeys := func(m map[string]bool) []string {
			out := make([]string, 0, len(m))
			for s := range m {
				out = append(out, s)
			}
			sort.Strings(out)
			return out
		}
		ss, es := sortedKeys(starts), sortedKeys(ends)
		// Cartesian closure: a pair absent from the fixes may still be
		// safely covered when its path group either has no live paths
		// (constraining nothing is harmless) or is already false in the
		// merged mode. Only pairs the merged mode validly times exclude
		// their startpoint from the aggregate.
		closureSafe := func(s, e string) bool {
			if pairs[[2]string{s, e}] {
				return true
			}
			start := s
			if start == "" {
				start = "*"
			}
			gk := sta.RelKey{Start: start, End: e, Launch: k.launch, Capture: k.capture, Check: k.check}
			gs, exists := groups[gk]
			if !exists {
				return true // no such path group
			}
			return fixedKeys[gk] || !mergedTimes(gs)
		}
		var aggStarts, soloStarts []string
		for _, s := range ss {
			ok := true
			for _, e := range es {
				if !closureSafe(s, e) {
					ok = false
					break
				}
			}
			if ok {
				aggStarts = append(aggStarts, s)
			} else {
				soloStarts = append(soloStarts, s)
			}
		}
		if len(aggStarts) > 0 {
			if len(aggStarts) == 1 && aggStarts[0] == "" {
				emit(k, nil, es)
			} else {
				emit(k, aggStarts, es)
			}
		}
		// Startpoints with a validly timed pair keep exactly their own
		// endpoints, grouped by identical endpoint signature.
		bySig := map[string][]string{}
		sigEnds := map[string][]string{}
		var sigOrder []string
		for _, s := range soloStarts {
			var myEnds []string
			for _, e := range es {
				if pairs[[2]string{s, e}] {
					myEnds = append(myEnds, e)
				}
			}
			sig := strings.Join(myEnds, "\x00")
			if _, seen := bySig[sig]; !seen {
				sigOrder = append(sigOrder, sig)
				sigEnds[sig] = myEnds
			}
			bySig[sig] = append(bySig[sig], s)
		}
		for _, sig := range sigOrder {
			group := bySig[sig]
			if len(group) == 1 && group[0] == "" {
				emit(k, nil, sigEnds[sig])
			} else {
				emit(k, group, sigEnds[sig])
			}
		}
	}
	return added
}

// addFalsePath appends an inferred false path, first merging it with an
// existing setup/hold twin into a single both-sides exception. Stage and
// rule feed the provenance record for the inserted (or widened) exception.
func (mg *Merger) addFalsePath(e *sdc.Exception, stage, rule, detail string) {
	if e.SetupHold != sdc.MinMaxBoth {
		twin := e.Clone()
		if e.SetupHold == sdc.MaxOnly {
			twin.SetupHold = sdc.MinOnly
		} else {
			twin.SetupHold = sdc.MaxOnly
		}
		twinKey := twin.Key()
		for i, have := range mg.merged.Exceptions {
			if have.Key() == twinKey {
				both := e.Clone()
				both.SetupHold = sdc.MinMaxBoth
				mg.merged.Exceptions[i] = both
				mg.memo.pending = append(mg.memo.pending, both)
				mg.provException(stage, rule, both, "", detail+" (merged with setup/hold twin)")
				return
			}
		}
	}
	mg.merged.Exceptions = append(mg.merged.Exceptions, e)
	mg.memo.pending = append(mg.memo.pending, e)
	mg.Report.AddedFalsePaths++
	mg.provException(stage, rule, e, "", detail)
}

// rebuildMergedForRefine is the refinement loop's merged-context rebuild.
// After rebuilding it transfers the previous context's memoized relation
// results for every endpoint NOT forward-reachable from the pins of the
// exceptions added this iteration: an exception-only rebuild changes
// nothing but exceptions, and a new exception can only complete at
// endpoints its pins reach, so relation results everywhere else are
// untouched. The invalidated endpoints also lose their merged
// fingerprints in the prune memo.
func (mg *Merger) rebuildMergedForRefine() error {
	prev := mg.mctx
	pending := mg.memo.pending
	mg.memo.pending = nil
	if err := mg.rebuildMergedExcOnly(); err != nil {
		return err
	}
	if mg.opt.Slow.NoCacheTransfer {
		mg.memo.dropMerged(nil)
		return nil
	}
	affected := mg.affectedEndpoints(pending)
	if affected == nil {
		mg.memo.dropMerged(nil)
		return nil
	}
	mg.mctx.AdoptRelationResults(prev, func(end graph.NodeID) bool { return !affected[end] })
	mg.memo.dropMerged(affected)
	return nil
}

// affectedEndpoints marks the nodes forward-reachable from the pins of
// the given exceptions. It returns nil when the effect cannot be bounded
// (an exception that names no graph pins — e.g. clock-to-clock scoping —
// can complete anywhere) and the caller must invalidate everything.
func (mg *Merger) affectedEndpoints(excs []*sdc.Exception) []bool {
	var seeds []graph.NodeID
	for _, e := range excs {
		pins := 0
		collect := func(pl *sdc.PointList) bool {
			if pl == nil {
				return true
			}
			for _, p := range pl.Pins {
				id, ok := mg.g.NodeByName(p.Name)
				if !ok {
					return false
				}
				seeds = append(seeds, id)
				pins++
			}
			return true
		}
		if !collect(e.From) {
			return nil
		}
		for _, t := range e.Throughs {
			if !collect(t) {
				return nil
			}
		}
		if !collect(e.To) {
			return nil
		}
		if pins == 0 {
			return nil
		}
	}
	if len(seeds) == 0 {
		// No new exceptions at all: nothing is invalidated.
		return make([]bool, mg.g.NumNodes())
	}
	return mg.g.ForwardReach(seeds)
}

// pass3 refines one ambiguous (start, end) pair at through-point
// granularity.
func (mg *Merger) pass3(startName, endName string, perModeTR [][]sta.ThroughRel, mergedRels []sta.ThroughRel) (int, error) {
	startID, ok1 := mg.g.NodeByName(startName)
	endID, ok2 := mg.g.NodeByName(endName)
	if !ok1 || !ok2 {
		return 0, fmt.Errorf("internal: pass-3 pair %s→%s not in graph", startName, endName)
	}
	// Through relations per mode and merged, indexed by node.
	type nodeStates struct {
		perMode []map[sta.RelKey]relation.Set
		merged  map[sta.RelKey]relation.Set
		modeAmb []bool
		mergAmb bool
	}
	byNode := map[graph.NodeID]*nodeStates{}
	get := func(n graph.NodeID) *nodeStates {
		ns := byNode[n]
		if ns == nil {
			ns = &nodeStates{perMode: make([]map[sta.RelKey]relation.Set, len(mg.ctxs)),
				modeAmb: make([]bool, len(mg.ctxs))}
			byNode[n] = ns
		}
		return ns
	}
	for m := range mg.ctxs {
		for _, tr := range perModeTR[m] {
			ns := get(tr.Node)
			mapped := make(map[sta.RelKey]relation.Set, len(tr.States))
			for k, set := range tr.States {
				mapped[mg.mapRelKey(m, k)] = set
			}
			ns.perMode[m] = mapped
			ns.modeAmb[m] = tr.Ambiguous
		}
	}
	for _, tr := range mergedRels {
		ns := get(tr.Node)
		ns.merged = tr.States
		ns.mergAmb = tr.Ambiguous
	}

	// Walk cone nodes in topological order; collect the frontier of
	// mismatching nodes (not dominated by an already-chosen node) per
	// (launch, capture, check).
	cone := mg.g.ConeBetween(startID, endID)
	type fixKey struct {
		launch, capture string
		check           relation.CheckType
		state           relation.State
	}
	chosen := map[fixKey][]graph.NodeID{}
	var chosenOrder []fixKey
	covered := map[fixKey][]bool{} // per key: nodes already downstream of a fix
	// Clock pairs the merged mode times anywhere in this cone; when only
	// one exists, emitted false paths can skip the clock scoping.
	allPairs := map[[2]string]bool{}

	markCovered := func(k fixKey, n graph.NodeID) {
		reach := mg.g.ForwardReach([]graph.NodeID{n})
		cov := covered[k]
		if cov == nil {
			cov = make([]bool, mg.g.NumNodes())
			covered[k] = cov
		}
		for i, r := range reach {
			if r {
				cov[i] = true
			}
		}
	}

	for _, n := range cone {
		if n == startID || n == endID {
			continue
		}
		ns := byNode[n]
		if ns == nil {
			continue
		}
		// Align keys across modes and merged for this node, in sorted
		// order so fix emission (and thus merged output and provenance
		// records) stays deterministic across runs. Every key at a node
		// shares this pair's Start/End, so the canonical RelKey order is
		// exactly launch/capture/check order; duplicates from different
		// maps land adjacent and compact away.
		var sortedKeys []sta.RelKey
		for _, rels := range ns.perMode {
			for k := range rels {
				sortedKeys = append(sortedKeys, k)
			}
		}
		for k := range ns.merged {
			sortedKeys = append(sortedKeys, k)
		}
		sta.SortRelKeys(sortedKeys)
		sortedKeys = slices.Compact(sortedKeys)
		for _, k := range sortedKeys {
			covKey := fixKey{launch: k.Launch, capture: k.Capture, check: k.Check}
			if ns.merged != nil && !ns.merged[k].Empty() {
				allPairs[[2]string{k.Launch, k.Capture}] = true
			}
			if cov := covered[covKey]; cov != nil && cov[n] {
				continue
			}
			// Target over scenario contexts at this node.
			states := make([]relation.State, 0, len(mg.ctxs))
			ambiguous := false
			for m := range mg.ctxs {
				var set relation.Set
				if ns.perMode[m] != nil {
					set = ns.perMode[m][k]
				}
				if set.Empty() {
					states = append(states, relation.StateFalse)
					continue
				}
				st, single := set.Single()
				if !single {
					ambiguous = true
					break
				}
				states = append(states, st)
			}
			if ambiguous || ns.mergAmb {
				continue // finer than pass 3; no fix at this node
			}
			target := relation.MergeTarget(states)
			var mergedSet relation.Set
			if ns.merged != nil {
				mergedSet = ns.merged[k]
			}
			if mergedSet.Empty() {
				continue // merged does not time these paths
			}
			ms, single := mergedSet.Single()
			if !single {
				continue // reconverging subclasses; a later node resolves them
			}
			if ms == target {
				continue
			}
			if target != relation.StateFalse && !relation.Relaxed(ms, target) {
				mg.Report.PessimisticGroups++
				continue
			}
			// False target or relaxed mismatch: constrain paths through
			// this node to the target state.
			mg.Report.Pass3Mismatch++
			fk := fixKey{k.Launch, k.Capture, k.Check, target}
			if len(chosen[fk]) == 0 {
				chosenOrder = append(chosenOrder, fk)
			}
			chosen[fk] = append(chosen[fk], n)
			markCovered(covKey, n)
		}
	}

	added := 0
	for _, fk := range chosenOrder {
		nodes := chosen[fk]
		e := fixException(fk.state, fk.check)
		e.Comment = "inferred by pass-3 refinement"
		e.From = &sdc.PointList{Pins: []sdc.ObjRef{mg.objRefFor(startName)}}
		e.Throughs = []*sdc.PointList{{Pins: mg.nodeRefs(nodes)}}
		e.To = &sdc.PointList{Pins: []sdc.ObjRef{mg.objRefFor(endName)}}
		if len(allPairs) > 1 {
			// Several clock pairs share the cone: keep the fix scoped to
			// its own launch/capture clocks (pins move into throughs).
			e.Throughs = append([]*sdc.PointList{{Pins: e.From.Pins}}, e.Throughs...)
			e.Throughs = append(e.Throughs, &sdc.PointList{Pins: e.To.Pins})
			e.From = &sdc.PointList{Clocks: []string{fk.launch}}
			e.To = &sdc.PointList{Clocks: []string{fk.capture}}
		}
		mg.addFalsePath(e, "data_refine/pass3", "§3.2 pass-3 through-point refinement",
			"mismatch localized to through points inside the start-end cone")
		added++
	}
	return added, nil
}

// objRefFor builds a pin or port reference for a flat name.
func (mg *Merger) objRefFor(name string) sdc.ObjRef {
	if mg.design.PortByName(name) != nil {
		return sdc.ObjRef{Kind: sdc.PortObj, Name: name}
	}
	return sdc.ObjRef{Kind: sdc.PinObj, Name: name}
}
