package core

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/incr"
	"modemerge/internal/library"
	"modemerge/internal/sdc"
)

// cornerFixture builds one generated design + a 4-mode functional family
// and returns the graph, parsed modes and a corner set.
func cornerFixture(t *testing.T, corners int) (*graph.Graph, []*sdc.Mode, []library.Corner) {
	t.Helper()
	gd, err := gen.Generate(gen.DesignSpec{
		Name: "corner_fx", Seed: 404, Domains: 2, BlocksPerDomain: 2,
		Stages: 2, RegsPerStage: 2, CloudDepth: 1, CrossPaths: 2, IOPairs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(gd.Design)
	if err != nil {
		t.Fatal(err)
	}
	family := gen.FamilySpec{Groups: 1, ModesPerGroup: []int{4}, BasePeriod: 2,
		FunctionalOnly: true, Corners: corners}
	var modes []*sdc.Mode
	for _, m := range gd.Modes(family) {
		mode, _, err := sdc.Parse(m.Name, m.Text, g.Design)
		if err != nil {
			t.Fatalf("mode %s: %v", m.Name, err)
		}
		modes = append(modes, mode)
	}
	return g, modes, gd.CornerSet(family)
}

func mergeText(t *testing.T, g *graph.Graph, modes []*sdc.Mode, opt Options) string {
	t.Helper()
	merged, _, err := MergeWithGraph(context.Background(), g, modes, opt)
	if err != nil {
		t.Fatalf("MergeWithGraph: %v", err)
	}
	return sdc.Write(merged)
}

// TestCornerNilByteIdentity is the regression guard that Corners: nil
// changes nothing: the corner-less merge of the fixture must be
// byte-identical to a merge through the exact same code path before
// corners existed — which we approximate by asserting the corner-less
// merge equals itself across runs AND equals a single neutral-corner
// merge (whose scenario set is definitionally the same analysis).
func TestCornerNilByteIdentity(t *testing.T) {
	g, modes, _ := cornerFixture(t, 0)
	base := mergeText(t, g, modes, Options{})
	again := mergeText(t, g, modes, Options{})
	if base != again {
		t.Fatal("corner-less merge not reproducible")
	}
	neutral := mergeText(t, g, modes, Options{Corners: []library.Corner{{Name: "typ"}}})
	if neutral != base {
		t.Errorf("single neutral corner changed the merged SDC:\n%s", firstLineDiff(base, neutral))
	}
}

// TestCornerDerateOnlyByteIdentity pins that corners whose only effect
// is delay/margin derates (no SDC overlay) cannot change the merged
// mode: timing relations derive from clocks, exceptions and structure,
// not delay magnitudes, so a pure-derate matrix merge must reproduce
// the corner-less merged SDC byte for byte.
func TestCornerDerateOnlyByteIdentity(t *testing.T) {
	g, modes, _ := cornerFixture(t, 0)
	base := mergeText(t, g, modes, Options{})
	derated := mergeText(t, g, modes, Options{Corners: []library.Corner{
		{Name: "fast", DelayScale: 0.8, EarlyScale: 0.9},
		{Name: "slow", DelayScale: 1.3, LateScale: 1.1, MarginScale: 1.5},
	}})
	if derated != base {
		t.Errorf("derate-only corners changed the merged SDC:\n%s", firstLineDiff(base, derated))
	}
}

// cornerMatrixFingerprint folds a corner-aware MergeAll into one
// comparable string: merged SDC + explain JSON (which embeds the
// per-corner provenance) + conflicts.
func cornerMatrixFingerprint(t *testing.T, g *graph.Graph, modes []*sdc.Mode, corners []library.Corner, parallelism int, cache *incr.Cache) string {
	t.Helper()
	merged, reports, mb, err := MergeAll(context.Background(), g, modes,
		Options{Parallelism: parallelism, Corners: corners, Cache: cache})
	if err != nil {
		t.Fatalf("MergeAll: %v", err)
	}
	var b strings.Builder
	for i := range merged {
		b.WriteString("== " + merged[i].Name + "\n")
		b.WriteString(sdc.Write(merged[i]))
		ej, err := json.Marshal(reports[i].Explain(merged[i].Name))
		if err != nil {
			t.Fatal(err)
		}
		b.Write(ej)
		b.WriteByte('\n')
	}
	for _, c := range mb.Conflicts {
		b.WriteString("conflict " + c.A + "|" + c.B + "|" + c.Reason + "\n")
	}
	return b.String()
}

// TestCornerMatrixDeterminism extends the determinism suite to the
// scenario matrix: a 4-mode × 3-corner MergeAll is byte-identical at
// Parallelism ∈ {1, 4}, across repeated runs, and under a warm
// incremental-cache replay (corner-keyed artifacts). CI runs this under
// -race with -cpu 1,4.
func TestCornerMatrixDeterminism(t *testing.T) {
	g, modes, corners := cornerFixture(t, 3)
	if len(corners) != 3 {
		t.Fatalf("expected 3 corners, got %d", len(corners))
	}
	baseline := cornerMatrixFingerprint(t, g, modes, corners, 1, nil)
	for _, p := range []int{1, 4} {
		for rep := 0; rep < 2; rep++ {
			if got := cornerMatrixFingerprint(t, g, modes, corners, p, nil); got != baseline {
				t.Fatalf("parallelism=%d rep=%d corner matrix output differs:\n%s",
					p, rep, firstLineDiff(baseline, got))
			}
		}
	}
	cache := incr.New(0)
	cold := cornerMatrixFingerprint(t, g, modes, corners, 4, cache)
	if cold != baseline {
		t.Fatalf("cold incremental corner merge differs:\n%s", firstLineDiff(baseline, cold))
	}
	warm := cornerMatrixFingerprint(t, g, modes, corners, 4, cache)
	if warm != baseline {
		t.Fatalf("warm incremental corner merge differs:\n%s", firstLineDiff(baseline, warm))
	}
}

// TestCornerProvenanceAndReport verifies a matrix merge reports its
// corner axis: Report.Corners lists the corner names in order and one
// scenario-matrix provenance record exists per corner, naming every
// mode@corner scenario it contributed.
func TestCornerProvenanceAndReport(t *testing.T) {
	g, modes, corners := cornerFixture(t, 2)
	_, rep, err := MergeWithGraph(context.Background(), g, modes, Options{Corners: corners})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corners) != 2 || rep.Corners[0] != "c0" || rep.Corners[1] != "c1" {
		t.Fatalf("Report.Corners = %v, want [c0 c1]", rep.Corners)
	}
	records := 0
	for _, p := range rep.Provenance {
		if p.Stage != "corners/scenario_matrix" {
			continue
		}
		records++
		if len(p.Modes) != len(modes) {
			t.Errorf("corner provenance %s lists %d scenarios, want %d", p.Constraint, len(p.Modes), len(modes))
		}
		for _, s := range p.Modes {
			if !strings.Contains(s, "@c") {
				t.Errorf("scenario name %q lacks @corner qualifier", s)
			}
		}
	}
	if records != 2 {
		t.Fatalf("got %d scenario-matrix provenance records, want 2", records)
	}
}

// TestCornerAcrossCornerWorstCase pins the tentpole semantics on a
// constructed matrix: an exception present only in one corner's overlay
// must NOT relax the merged mode, because the other corner's scenarios
// still time the path — refinement takes the across-corner worst case.
// The injected merge-best-corner-only fault drops the other corner and
// must produce a merged mode with more false paths (the optimism the
// corner-conformity oracle exists to catch).
func TestCornerAcrossCornerWorstCase(t *testing.T) {
	g, modes, _ := cornerFixture(t, 0)
	// The cross-domain register pairs are false-pathed in every
	// functional mode already; instead exclude an in-block path that the
	// base modes time. Find one via the generated multicycle anchor: the
	// overlay false-paths everything from domain-1's input port.
	overlay := "set_false_path -from [get_ports d1_in0]\n"
	corners := []library.Corner{
		{Name: "wc", SDC: overlay},
		{Name: "bc"},
	}
	clean, cleanRep, err := MergeWithGraph(context.Background(), g, modes, Options{Corners: corners})
	if err != nil {
		t.Fatal(err)
	}
	faulted, faultRep, err := MergeWithGraph(context.Background(), g, modes,
		Options{Corners: corners, Inject: FaultInjection{MergeBestCornerOnly: true}})
	if err != nil {
		t.Fatal(err)
	}
	// The clean matrix merge must match the corner-less merge: corner bc
	// times every path the base modes time, so no overlay-only exclusion
	// may leak into the merged mode.
	base := mergeText(t, g, modes, Options{})
	if got := sdc.Write(clean); got != base {
		t.Errorf("across-corner worst case violated — overlay-only exclusions leaked into merged SDC:\n%s",
			firstLineDiff(base, got))
	}
	// The faulted merge sees only corner wc, where d1_in0 paths are
	// false in every scenario — it must relax relative to the clean one.
	if faultRep.AddedFalsePaths <= cleanRep.AddedFalsePaths {
		t.Fatalf("merge-best-corner-only fault added no extra false paths (clean=%d faulted=%d)",
			cleanRep.AddedFalsePaths, faultRep.AddedFalsePaths)
	}
	if sdc.Write(faulted) == base {
		t.Fatal("faulted merge unexpectedly identical to corner-less merge")
	}
}

// TestCornerMergeabilityConflict builds a latent clock-uncertainty
// asymmetry that only a corner overlay activates: mode A declares an
// uncertainty on the shared clock, mode B none, so the base mock merge
// has nothing to compare — but a corner overlay adding a small
// uncertainty to both sides exposes the disagreement, and the pair must
// conflict with a corner-prefixed reason.
func TestCornerMergeabilityConflict(t *testing.T) {
	g, modes, _ := cornerFixture(t, 0)
	textA := sdc.Write(modes[0]) + "\nset_clock_uncertainty 0.4 [get_clocks clk_d0]\n"
	modeA, _, err := sdc.Parse(modes[0].Name, textA, g.Design)
	if err != nil {
		t.Fatal(err)
	}
	pair := []*sdc.Mode{modeA, modes[1]}
	base, err := AnalyzeMergeability(g, pair, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Edge[0][1] {
		t.Fatalf("base pair unexpectedly conflicts: %v", base.Conflicts)
	}
	corners := []library.Corner{{Name: "wc", SDC: "set_clock_uncertainty 0.05 [get_clocks clk_d0]\n"}}
	cornered, err := AnalyzeMergeability(g, pair, Options{Corners: corners})
	if err != nil {
		t.Fatal(err)
	}
	if cornered.Edge[0][1] {
		t.Fatal("corner overlay did not expose the uncertainty conflict")
	}
	if len(cornered.Conflicts) == 0 || !strings.HasPrefix(cornered.Conflicts[0].Reason, "corner wc: ") {
		t.Fatalf("conflict reason lacks corner prefix: %v", cornered.Conflicts)
	}
}

// TestCornerValidation covers the corner-set error paths: duplicate
// names, unnamed corners, overlays that create clocks, and the
// unsupported hierarchical combination.
func TestCornerValidation(t *testing.T) {
	g, modes, _ := cornerFixture(t, 0)
	cases := []struct {
		name    string
		corners []library.Corner
		wantSub string
	}{
		{"duplicate", []library.Corner{{Name: "x"}, {Name: "x"}}, "duplicate corner name"},
		{"unnamed", []library.Corner{{}}, "name required"},
		{"clock-overlay", []library.Corner{{Name: "x", SDC: "create_clock -name evil -period 1 [get_ports test_clk]\n"}},
			"must not create clocks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := MergeWithGraph(context.Background(), g, modes, Options{Corners: tc.corners})
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}
