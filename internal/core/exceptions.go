package core

import (
	"modemerge/internal/obs"
	"modemerge/internal/sdc"
)

// mapException clones an exception of mode m with its clock references
// mapped into the merged namespace.
func (mg *Merger) mapException(m int, e *sdc.Exception) *sdc.Exception {
	c := e.Clone()
	mapClocks := func(pl *sdc.PointList) {
		for i, name := range pl.Clocks {
			pl.Clocks[i] = mg.cmap.mapName(m, name)
		}
	}
	if c.From != nil {
		mapClocks(c.From)
	}
	if c.To != nil {
		mapClocks(c.To)
	}
	return c
}

// mergeExceptions implements §3.1.9 and §3.1.10: exceptions present in
// every mode join the merged mode directly; exceptions present in a subset
// are uniquified by restricting their launch clocks to clocks that exist
// only in that subset, or dropped (false paths are recovered exactly by
// refinement; dropped relaxations make the merged mode pessimistic but
// sign-off safe).
func (mg *Merger) mergeExceptions() error {
	type excInfo struct {
		mapped  *sdc.Exception
		inModes []int
	}
	byKey := map[string]*excInfo{}
	var order []string
	for m, mode := range mg.modes {
		seenInMode := map[string]bool{}
		for _, e := range mode.Exceptions {
			me := mg.mapException(m, e)
			key := me.Key()
			if seenInMode[key] {
				continue
			}
			seenInMode[key] = true
			info := byKey[key]
			if info == nil {
				info = &excInfo{mapped: me}
				byKey[key] = info
				order = append(order, key)
			}
			info.inModes = append(info.inModes, m)
		}
	}
	for _, key := range order {
		info := byKey[key]
		carriers := mg.modeNames(info.inModes)
		if len(info.inModes) == len(mg.modes) {
			mg.merged.Exceptions = append(mg.merged.Exceptions, info.mapped)
			mg.Report.prov(obs.Provenance{
				Stage:      "prelim/exception_merge",
				Rule:       "§3.1.9 exception intersection",
				Action:     obs.ActionKeep,
				Constraint: sdc.WriteException(info.mapped),
				Detail:     "present in every merged mode",
			})
			continue
		}
		if mg.opt.Inject.KeepSubsetExceptions {
			// Injected fault: the naive textual union keeps the subset
			// exception unconditionally, relaxing the other modes' paths.
			mg.merged.Exceptions = append(mg.merged.Exceptions, info.mapped)
			continue
		}
		if uniq := mg.uniquify(info.mapped, info.inModes); uniq != nil {
			mg.merged.Exceptions = append(mg.merged.Exceptions, uniq)
			mg.Report.UniquifiedExceptions++
			mg.Report.prov(obs.Provenance{
				Stage:      "prelim/exception_merge",
				Rule:       "§3.1.10 exception uniquification",
				Action:     obs.ActionUniquify,
				Constraint: sdc.WriteException(uniq),
				Clocks:     append([]string(nil), uniq.From.Clocks...),
				Modes:      carriers,
				Detail:     "restricted to launch clocks that exist only in the carrying modes",
			})
			continue
		}
		switch info.mapped.Kind {
		case sdc.MaxDelay, sdc.MinDelay:
			// An explicit delay bound tightens checks: applying it to the
			// other modes' paths is pessimistic but sign-off safe, while
			// dropping it would be optimistic. Keep it.
			mg.merged.Exceptions = append(mg.merged.Exceptions, info.mapped)
			mg.Report.warnf("%s (line %d) exists only in a subset of modes and cannot be uniquified; "+
				"keeping it applies the bound to all modes' paths (pessimistic)",
				info.mapped.Kind, info.mapped.Line)
			mg.Report.prov(obs.Provenance{
				Stage:      "prelim/exception_merge",
				Rule:       "§3.1.10 exception uniquification",
				Action:     obs.ActionKeep,
				Constraint: sdc.WriteException(info.mapped),
				Modes:      carriers,
				Detail:     "delay bound not uniquifiable; kept for all modes' paths (pessimistic, sign-off safe)",
			})
		case sdc.MulticyclePath:
			// Dropping a relaxation is pessimistic but safe; the
			// refinement passes cannot restore it precisely.
			mg.Report.DroppedExceptions++
			mg.Report.warnf("%s (line %d) exists only in a subset of modes and cannot be uniquified; "+
				"dropping it makes the merged mode pessimistic for its paths",
				info.mapped.Kind, info.mapped.Line)
			mg.Report.prov(obs.Provenance{
				Stage:      "prelim/exception_merge",
				Rule:       "§3.1.10 exception uniquification",
				Action:     obs.ActionDrop,
				Constraint: sdc.WriteException(info.mapped),
				Modes:      carriers,
				Detail:     "relaxation not uniquifiable; dropped (pessimistic, sign-off safe)",
			})
		default:
			// False paths are recovered exactly by the refinement passes.
			mg.Report.DroppedExceptions++
			mg.Report.prov(obs.Provenance{
				Stage:      "prelim/exception_merge",
				Rule:       "§3.1.9 exception intersection",
				Action:     obs.ActionDrop,
				Constraint: sdc.WriteException(info.mapped),
				Modes:      carriers,
				Detail:     "subset-only false path; data refinement recovers the behaviour exactly",
			})
		}
	}
	return nil
}

// uniquify implements §3.1.10: restrict the exception to the launch clocks
// its paths use in the modes that carry it. This is sound only when none
// of those clocks exists in any mode that lacks the exception. The
// original -from pins move into a leading -through group (the paper's
// mode A′ rewrite), preserving behaviour within the carrying modes.
func (mg *Merger) uniquify(e *sdc.Exception, inModes []int) *sdc.Exception {
	inSet := map[int]bool{}
	for _, m := range inModes {
		inSet[m] = true
	}

	// Launch clocks used by the exception in the carrying modes, in the
	// merged namespace.
	launch := map[string]bool{}
	for _, m := range inModes {
		ctx := mg.ctxs[m]
		switch {
		case len(e.From.Clocks) > 0:
			// Mapped from-clocks that exist in this mode.
			for _, c := range e.From.Clocks {
				if mg.cmap.existsIn(c, m) {
					launch[c] = true
				}
			}
		case len(e.From.Pins) > 0:
			for _, pin := range e.From.Pins {
				for _, local := range ctx.StartpointLaunchClocks(pin.Name) {
					launch[mg.cmap.mapName(m, local)] = true
				}
			}
		default:
			// Unanchored from side: any clock of the mode can launch.
			for _, local := range ctx.AllClockNames() {
				launch[mg.cmap.mapName(m, local)] = true
			}
		}
	}
	if len(launch) == 0 {
		return nil
	}
	// Soundness: none of those clocks may exist in a mode without the
	// exception — otherwise the restricted exception would still hit that
	// mode's valid paths.
	for m := range mg.modes {
		if inSet[m] {
			continue
		}
		for c := range launch {
			if mg.cmap.existsIn(c, m) {
				return nil
			}
		}
	}

	uniq := e.Clone()
	var clocks []string
	for c := range launch {
		clocks = append(clocks, c)
	}
	sortStrings(clocks)
	// Move original -from pins into a leading through group, then anchor
	// the from side on the clocks (a point list cannot mix a clock
	// restriction with pins and keep AND semantics).
	if len(uniq.From.Pins) > 0 {
		lead := &sdc.PointList{Pins: uniq.From.Pins, Edge: uniq.From.Edge}
		uniq.Throughs = append([]*sdc.PointList{lead}, uniq.Throughs...)
	}
	uniq.From = &sdc.PointList{Clocks: clocks}
	return uniq
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
