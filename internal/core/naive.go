package core

import (
	"context"
	"fmt"

	"modemerge/internal/graph"
	"modemerge/internal/sdc"
)

// NaiveMerge is the textual merged-mode baseline (in the spirit of the
// DAC'09 user-track reference [4] the paper contrasts with): union of
// clocks and external delays, intersection of cases, disables and
// exceptions — but no mergeability tolerance handling, no exception
// uniquification, no clock exclusivity inference and, crucially, no
// timing-graph refinement. The result over-times paths that individual
// modes disable (hurting conformity) and under-constrains nothing it can
// detect. The benchmark harness uses it to quantify what the graph-based
// method buys.
func NaiveMerge(cx context.Context, g *graph.Graph, modes []*sdc.Mode, opt Options) (*sdc.Mode, error) {
	mg, err := newMergerWithGraph(cx, g, modes, opt)
	if err != nil {
		return nil, err
	}
	mg.merged.Name += "_naive"
	mg.unionClocks()
	mg.mergeClockConstraints()
	mg.unionIODelays()
	// Intersections without the conflicting-case translation.
	naiveIntersectCases(mg)
	mg.intersectDisables()
	mg.mergeDriveLoad()
	// Exceptions: plain intersection, no uniquification.
	type excCount struct {
		mapped *sdc.Exception
		n      int
	}
	byKey := map[string]*excCount{}
	var order []string
	for m, mode := range mg.modes {
		seen := map[string]bool{}
		for _, e := range mode.Exceptions {
			me := mg.mapException(m, e)
			key := me.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			c := byKey[key]
			if c == nil {
				c = &excCount{mapped: me}
				byKey[key] = c
				order = append(order, key)
			}
			c.n++
		}
	}
	for _, key := range order {
		if c := byKey[key]; c.n == len(mg.modes) {
			mg.merged.Exceptions = append(mg.merged.Exceptions, c.mapped)
		}
	}
	naiveClockExclusivity(mg)
	return mg.merged, nil
}

// naiveClockExclusivity is the textual approximation of §3.1.7: merged
// clocks are exclusive when they are never *defined* in the same mode —
// no timing-graph activity analysis (a clock fully replaced by a
// generated clock still "coexists" textually).
func naiveClockExclusivity(mg *Merger) {
	names := mg.cmap.order
	n := len(names)
	if n < 2 {
		return
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			coexist := false
			for m := range mg.modes {
				if mg.cmap.existsIn(names[i], m) && mg.cmap.existsIn(names[j], m) {
					coexist = true
					break
				}
			}
			if !coexist {
				mg.merged.ClockGroups = append(mg.merged.ClockGroups, &sdc.ClockGroups{
					Name:   fmt.Sprintf("naive_excl_%s_%s", names[i], names[j]),
					Kind:   sdc.PhysicallyExclusive,
					Groups: [][]string{{names[i]}, {names[j]}},
				})
			}
		}
	}
}

// naiveIntersectCases keeps only cases identical in every mode; conflicts
// are silently dropped (no inferred disables).
func naiveIntersectCases(mg *Merger) {
	type info struct {
		value   string
		obj     sdc.ObjRef
		n       int
		consist bool
	}
	byObj := map[string]*info{}
	var order []string
	for _, mode := range mg.modes {
		seen := map[string]bool{}
		for _, ca := range mode.Cases {
			for _, obj := range ca.Objects {
				key := obj.String()
				if seen[key] {
					continue
				}
				seen[key] = true
				in := byObj[key]
				if in == nil {
					in = &info{value: ca.Value.String(), obj: obj, consist: true}
					byObj[key] = in
					order = append(order, key)
				} else if in.value != ca.Value.String() {
					in.consist = false
				}
				in.n++
			}
		}
	}
	for _, key := range order {
		in := byObj[key]
		if in.n == len(mg.modes) && in.consist {
			mg.merged.Cases = append(mg.merged.Cases, &sdc.CaseAnalysis{
				Value: parseLogic(in.value), Objects: []sdc.ObjRef{in.obj}})
		}
	}
}
