package core

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"

	"modemerge/internal/graph"
	"modemerge/internal/incr"
	"modemerge/internal/library"
	"modemerge/internal/obs"
	"modemerge/internal/sdc"
	"modemerge/internal/sta"
)

// This file is the incremental re-merge engine's hook into the merging
// flow: every cacheable stage of Merge/MergeAll is expressed as a pure
// function from content-addressed inputs to a serializable output, and
// consults Options.Cache before computing. Three granularities exist
// (see internal/incr): per-mode sta contexts, pairwise mergeability
// verdicts, and whole-clique merge artifacts. Editing one mode of N
// re-runs only that mode's context build, its N−1 mock merges, and the
// cliques containing it; an unchanged re-merge is a pure cache replay.
// The difftest harness proves incremental results byte-identical to
// cold merges (PropIncremental).

// incrOptionsKey fingerprints every option that changes merge *results*.
// Parallelism, worker counts, hooks, tracing and the Slow debug knobs
// are excluded — the engine guarantees byte-identical output across
// those (see DESIGN.md), so results cached at one setting are valid at
// every other.
func (o Options) incrOptionsKey() string {
	o = o.withDefaults()
	return fmt.Sprintf("tol=%g|iters=%d|inject=%v/%v/%v/%v/%v/%v|edges=%d|hier=%v|corners=%s",
		o.Tolerance, o.MaxRefineIterations,
		o.Inject.KeepSubsetExceptions, o.Inject.SkipClockRefinement, o.Inject.SkipDataRefinement,
		o.Inject.ETMKeepSubsetExceptions, o.Inject.PruneSkipDifferingEndpoints,
		o.Inject.MergeBestCornerOnly,
		o.STA.MaxLaunchEdges, o.Hierarchical != nil,
		library.CornerSetKey(o.Corners))
}

// contextCacheKey addresses one built per-mode analysis context. On top
// of the semantic identity (sta.FingerprintText) it pins the resolved
// worker count: a cached context keeps its internal pool size, and the
// Parallelism contract promises a fully sequential path at 1, so
// contexts are only shared between runs with equal worker settings.
func contextCacheKey(g *graph.Graph, modeText string, staOpt sta.Options, workers int) string {
	return incr.Hash(sta.FingerprintText(g, modeText, staOpt), "w", strconv.Itoa(workers))
}

// cachedContexts fills mg.ctxs from the cache where possible and builds
// the rest on the bounded pool, storing new builds back. Cached contexts
// are built without a trace span (they outlive any one tracer), so the
// per-merge build_contexts span reports hit/miss counters instead of
// per-scenario children. Returns the per-scenario errors array (first
// non-nil wins, as in the cold path). The scenario's corner is part of
// the sta fingerprint, so corner-keyed artifacts never collide with the
// corner-less (or other-corner) builds of the same mode text.
func (mg *Merger) cachedContexts(cx context.Context, cache *incr.Cache, sp *obs.Span, scen []*sdc.Mode) []error {
	errs := make([]error, len(scen))
	keys := make([]string, len(scen))
	var misses []int
	hits := int64(0)
	for i, m := range scen {
		staOpt := mg.scenarioStaOptions(i)
		staOpt.Span = nil // cached contexts must not reference this merge's tracer
		keys[i] = contextCacheKey(mg.g, sdc.Write(m), staOpt, staOpt.Workers)
		if v, ok := cache.GetObject(incr.GranContext, keys[i]); ok {
			mg.ctxs[i] = v.(*sta.Context)
			hits++
			continue
		}
		misses = append(misses, i)
	}
	forEachParallel(cx, len(misses), mg.opt.parallelism(), func(k int) {
		i := misses[k]
		staOpt := mg.scenarioStaOptions(i)
		staOpt.Span = nil
		ctx, err := sta.NewContext(mg.g, scen[i], staOpt)
		if err != nil {
			errs[i] = fmt.Errorf("mode %s: %w", mg.scenarioName(i), err)
			return
		}
		mg.ctxs[i] = ctx
	})
	for _, i := range misses {
		if mg.ctxs[i] != nil {
			cache.PutObject(incr.GranContext, keys[i], mg.ctxs[i])
		}
	}
	sp.Add("ctx_cache_hits", hits)
	sp.Add("ctx_cache_misses", int64(len(misses)))
	return errs
}

// pairVerdictKey addresses one mock-merge verdict. The mock merge reads
// only the two modes and the tolerance — no graph — so verdicts survive
// netlist edits and even transfer between designs sharing mode files.
func pairVerdictKey(tolerance float64, textA, textB string) string {
	return incr.Hash("mockmerge", fmt.Sprintf("%g", tolerance), textA, textB)
}

// Stored pair verdicts: one status byte then the reason ("" when
// mergeable), so an empty conflict reason is distinguishable from a
// cache miss.
const (
	pairMergeable = 'M'
	pairConflict  = 'C'
)

func encodePairVerdict(reason string) []byte {
	if reason == "" {
		return []byte{pairMergeable}
	}
	return append([]byte{pairConflict}, reason...)
}

func decodePairVerdict(b []byte) (reason string, ok bool) {
	if len(b) == 0 {
		return "", false
	}
	switch b[0] {
	case pairMergeable:
		return "", true
	case pairConflict:
		return string(b[1:]), true
	}
	return "", false
}

// cliqueArtifact is the serialized product of one clique merge: enough
// to reconstruct the merged mode (by re-parsing its canonical SDC
// against the design) and the full report, plus the member context
// stamps for integrity checking and explain surfaces.
//
// Re-parsing is lossy in exactly two places — the parser drops trailing
// `;#` comments (DisableTiming.Comment, ClockSense.Comment) and the
// Inferred marker the merger sets on its own disables — so those fields
// travel beside the SDC text and are re-attached positionally (statement
// order survives a Write/Parse round trip).
type cliqueArtifact struct {
	Name   string      `json:"name"`
	SDC    string      `json:"sdc"`
	Report *Report     `json:"report"`
	Stamps []sta.Stamp `json:"stamps,omitempty"`

	DisableComments []string `json:"disable_comments,omitempty"`
	DisableInferred []bool   `json:"disable_inferred,omitempty"`
	SenseComments   []string `json:"sense_comments,omitempty"`
}

// cliqueKey addresses one clique merge: design fingerprint, result-
// affecting options, merged-name override and the member modes' resolved
// SDC texts in clique order.
func cliqueKey(g *graph.Graph, opt Options, mergedName string, memberTexts []string) string {
	parts := make([]string, 0, len(memberTexts)+3)
	parts = append(parts, g.Fingerprint(), opt.incrOptionsKey(), "name="+mergedName)
	parts = append(parts, memberTexts...)
	return incr.Hash(parts...)
}

// CliqueKey is the exported content address of one clique merge, used by
// the distributed fabric to name clique jobs and their artifacts in a
// shared blob store. Two nodes computing CliqueKey over the same design,
// options and member modes agree on the key, which is what makes clique
// retries idempotent.
func CliqueKey(g *graph.Graph, opt Options, group []*sdc.Mode) string {
	memberTexts := make([]string, len(group))
	for i, m := range group {
		memberTexts[i] = sdc.Write(m)
	}
	return cliqueKey(g, opt, opt.MergedName, memberTexts)
}

// EncodeCliqueArtifact serializes a finished clique merge for transport
// or storage: the same wire format the incremental cache persists, so a
// worker's completion payload can be stored verbatim and later replayed
// by lookupClique on the coordinator.
func EncodeCliqueArtifact(merged *sdc.Mode, report *Report, stamps []sta.Stamp) ([]byte, error) {
	art := cliqueArtifact{
		Name:            merged.Name,
		SDC:             sdc.Write(merged),
		Report:          report,
		Stamps:          stamps,
		DisableComments: make([]string, len(merged.Disables)),
		DisableInferred: make([]bool, len(merged.Disables)),
		SenseComments:   make([]string, len(merged.ClockSenses)),
	}
	for i, d := range merged.Disables {
		art.DisableComments[i] = d.Comment
		art.DisableInferred[i] = d.Inferred
	}
	for i, s := range merged.ClockSenses {
		art.SenseComments[i] = s.Comment
	}
	return json.Marshal(art)
}

// DecodeCliqueArtifact reconstructs a merged mode + report from an
// EncodeCliqueArtifact payload by re-parsing the canonical SDC against
// the design and re-attaching the comment/inferred fields the parser
// drops (see cliqueArtifact). Decoding is the exact inverse the cache
// replay path uses, so a mode round-tripped through the wire is
// byte-identical to one merged locally.
func DecodeCliqueArtifact(b []byte, g *graph.Graph) (*sdc.Mode, *Report, error) {
	var art cliqueArtifact
	if err := json.Unmarshal(b, &art); err != nil {
		return nil, nil, fmt.Errorf("clique artifact: %w", err)
	}
	if art.Report == nil {
		return nil, nil, fmt.Errorf("clique artifact: missing report")
	}
	mode, _, err := sdc.Parse(art.Name, art.SDC, g.Design)
	if err != nil {
		return nil, nil, fmt.Errorf("clique artifact: re-parsing %q: %w", art.Name, err)
	}
	if len(art.DisableComments) != len(mode.Disables) ||
		len(art.DisableInferred) != len(mode.Disables) ||
		len(art.SenseComments) != len(mode.ClockSenses) {
		return nil, nil, fmt.Errorf("clique artifact: field counts do not match re-parsed mode %q", art.Name)
	}
	for i, d := range mode.Disables {
		d.Comment = art.DisableComments[i]
		d.Inferred = art.DisableInferred[i]
	}
	for i, s := range mode.ClockSenses {
		s.Comment = art.SenseComments[i]
	}
	return mode, art.Report, nil
}

// lookupClique returns the cached merged mode + report for the key, or
// ok=false. A stored artifact that no longer parses against the design
// (impossible under content addressing, but cheap to guard) is treated
// as a miss.
func lookupClique(cache *incr.Cache, key string, g *graph.Graph) (*sdc.Mode, *Report, bool) {
	b, ok := cache.GetBytes(incr.GranClique, key)
	if !ok {
		return nil, nil, false
	}
	mode, report, err := DecodeCliqueArtifact(b, g)
	if err != nil {
		return nil, nil, false
	}
	return mode, report, true
}

// storeClique serializes one finished clique merge into the cache.
func storeClique(cache *incr.Cache, key string, merged *sdc.Mode, report *Report, stamps []sta.Stamp) {
	b, err := EncodeCliqueArtifact(merged, report, stamps)
	if err != nil {
		return // unserializable report: skip caching, never fail the merge
	}
	cache.PutBytes(incr.GranClique, key, b)
}

// stamps collects the member contexts' stamps for artifact metadata.
func (mg *Merger) stamps() []sta.Stamp {
	out := make([]sta.Stamp, len(mg.ctxs))
	for i, c := range mg.ctxs {
		out[i] = c.Stamp()
	}
	return out
}
