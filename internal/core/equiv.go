package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"modemerge/internal/graph"
	"modemerge/internal/relation"
	"modemerge/internal/sdc"
	"modemerge/internal/sta"
)

// EquivalenceResult reports the timing-relationship comparison between a
// merged mode and its individual modes — the paper's correct-by-
// construction validation, also usable standalone as an SDC equivalence
// checker.
type EquivalenceResult struct {
	// MatchedGroups count path groups whose merged state equals the
	// per-path most-restrictive individual state.
	MatchedGroups int
	// PessimisticGroups are timed more tightly by the merged mode than
	// any individual mode requires (sign-off safe).
	PessimisticGroups int
	// OptimisticMismatches are groups the merged mode relaxes or drops
	// relative to the target — sign-off violations. Must be empty for a
	// valid merge.
	OptimisticMismatches []string
	// Unresolved groups stayed ambiguous through pass 3.
	Unresolved []string
}

// Equivalent reports overall success: no optimistic mismatches.
func (r *EquivalenceResult) Equivalent() bool { return len(r.OptimisticMismatches) == 0 }

// String summarizes the result.
func (r *EquivalenceResult) String() string {
	return fmt.Sprintf("matched=%d pessimistic=%d optimistic=%d unresolved=%d",
		r.MatchedGroups, r.PessimisticGroups, len(r.OptimisticMismatches), len(r.Unresolved))
}

// CheckEquivalence compares the merged mode against the individual modes
// at the three granularities of §3.2, without modifying anything. The
// clock mapping is rediscovered structurally (same source set and
// waveform). Cancelling cx aborts between and inside the passes with the
// context error.
func CheckEquivalence(cx context.Context, g *graph.Graph, individual []*sdc.Mode, merged *sdc.Mode, opt Options) (*EquivalenceResult, error) {
	mg, err := newMergerWithGraph(cx, g, individual, opt)
	if err != nil {
		return nil, err
	}
	// Rebuild only the clock map (union without emitting).
	mg.unionClocks()
	mg.merged = merged
	if err := mg.rebuildMerged(); err != nil {
		return nil, err
	}
	return mg.checkEquivalence(cx)
}

// moreRelaxed reports whether the merged state relaxes the target —
// an optimistic (unsafe) difference.
func moreRelaxed(merged, target relation.State) bool {
	return relation.Relaxed(merged, target)
}

// checkEquivalence runs the non-mutating 3-pass comparison on the
// merger's current merged context.
func (mg *Merger) checkEquivalence(cx context.Context) (*EquivalenceResult, error) {
	res := &EquivalenceResult{}
	esp := mg.span.Child("equivalence")
	defer func() {
		esp.Add("matched", int64(res.MatchedGroups))
		esp.Add("pessimistic", int64(res.PessimisticGroups))
		esp.Add("optimistic", int64(len(res.OptimisticMismatches)))
		esp.Add("unresolved", int64(len(res.Unresolved)))
		esp.Finish()
	}()

	describe := func(k sta.RelKey, target, merged relation.Set) string {
		return fmt.Sprintf("%s -> %s [%s/%s %s]: individual=%s merged=%s",
			k.Start, k.End, k.Launch, k.Capture, k.Check, target.String(), merged.String())
	}
	classify := func(k sta.RelKey, gs *groupStates) (ambiguous bool) {
		target, ok := gs.target()
		if !ok {
			return true
		}
		ts, _ := target.Single()
		merged := gs.merged
		if merged.Empty() {
			merged = relation.NewSet(relation.StateFalse)
		}
		ms, single := merged.Single()
		if !single {
			return true
		}
		switch {
		case ms == ts:
			res.MatchedGroups++
		case moreRelaxed(ms, ts):
			res.OptimisticMismatches = append(res.OptimisticMismatches, describe(k, target, merged))
		default:
			res.PessimisticGroups++
		}
		return false
	}

	// Pass 1.
	p1 := esp.Child("equiv_pass1")
	perMode, mergedRels := mg.endpointAll(cx)
	if err := cx.Err(); err != nil {
		p1.Finish()
		return nil, err
	}
	groups := mg.gatherGroups(perMode, mergedRels)
	pass2 := nameSet{}
	for k, gs := range groups {
		if classify(k, gs) {
			pass2.add(k.End)
		}
	}
	p1.Add("path_groups", int64(len(groups)))
	p1.Finish()

	// Pass 2 (relations per endpoint computed in parallel).
	p2 := esp.Child("equiv_pass2")
	ends := pass2.sorted()
	type sePair struct{ start, end string }
	pass3 := map[sePair]bool{}
	seGroupsPerEnd := make([]map[sta.RelKey]*groupStates, len(ends))
	var firstErr error
	var errMu sync.Mutex
	forEachParallel(cx, len(ends), mg.opt.parallelism(), func(i int) {
		endID, ok := mg.g.NodeByName(ends[i])
		if !ok {
			errMu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("internal: endpoint %q not in graph", ends[i])
			}
			errMu.Unlock()
			return
		}
		perModeSE := make([]map[sta.RelKey]relation.Set, len(mg.ctxs))
		for m, ctx := range mg.ctxs {
			perModeSE[m] = ctx.StartEndRelations(endID)
		}
		seGroupsPerEnd[i] = mg.gatherGroups(perModeSE, mg.mctx.StartEndRelations(endID))
	})
	if firstErr != nil {
		p2.Finish()
		return nil, firstErr
	}
	if err := cx.Err(); err != nil {
		p2.Finish()
		return nil, err
	}
	for _, seGroups := range seGroupsPerEnd {
		for k, gs := range seGroups {
			if classify(k, gs) {
				pass3[sePair{k.Start, k.End}] = true
			}
		}
	}
	p2.Add("endpoints", int64(len(ends)))
	p2.Finish()

	// Pass 3.
	p3 := esp.Child("equiv_pass3")
	defer p3.Finish()
	var pairs []sePair
	for p := range pass3 {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].start != pairs[j].start {
			return pairs[i].start < pairs[j].start
		}
		return pairs[i].end < pairs[j].end
	})
	p3.Add("pairs", int64(len(pairs)))
	for _, p := range pairs {
		if err := cx.Err(); err != nil {
			return nil, err
		}
		unresolved, err := mg.checkPass3(p.start, p.end, res)
		if err != nil {
			return nil, err
		}
		res.Unresolved = append(res.Unresolved, unresolved...)
	}
	return res, nil
}

// checkPass3 compares through-point relations for one pair, recording
// matches/pessimism/optimism on res. Nodes that remain multi-state on
// both sides after pass 3 are reported unresolved only when the sets
// differ.
func (mg *Merger) checkPass3(startName, endName string, res *EquivalenceResult) ([]string, error) {
	startID, ok1 := mg.g.NodeByName(startName)
	endID, ok2 := mg.g.NodeByName(endName)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("internal: pass-3 pair %s→%s not in graph", startName, endName)
	}
	perModeTR, mergedTR := mg.throughAll(startID, endID)
	perMode := make([]map[graph.NodeID]map[sta.RelKey]relation.Set, len(mg.ctxs))
	for m := range mg.ctxs {
		perMode[m] = map[graph.NodeID]map[sta.RelKey]relation.Set{}
		for _, tr := range perModeTR[m] {
			mapped := map[sta.RelKey]relation.Set{}
			for k, set := range tr.States {
				mapped[mg.mapRelKey(m, k)] = set
			}
			perMode[m][tr.Node] = mapped
		}
	}
	var unresolved []string
	for _, tr := range mergedTR {
		for k, mergedSet := range tr.States {
			states := make([]relation.State, 0, len(mg.ctxs))
			nodeAmbiguous := false
			for m := range mg.ctxs {
				var set relation.Set
				if rels := perMode[m][tr.Node]; rels != nil {
					set = rels[k]
				}
				if set.Empty() {
					states = append(states, relation.StateFalse)
					continue
				}
				st, single := set.Single()
				if !single {
					nodeAmbiguous = true
					break
				}
				states = append(states, st)
			}
			ms, single := mergedSet.Single()
			if nodeAmbiguous || !single {
				// Reconvergent subclasses meet here; finer nodes resolve
				// them. Only a leaf-level disagreement is unresolved, and
				// those were counted at the nodes that stayed uniform.
				continue
			}
			target := relation.MergeTarget(states)
			switch {
			case ms == target:
				res.MatchedGroups++
			case moreRelaxed(ms, target):
				res.OptimisticMismatches = append(res.OptimisticMismatches,
					fmt.Sprintf("%s -through %s-> %s [%s/%s %s]: individual=%s merged=%s",
						startName, tr.Name, endName, k.Launch, k.Capture, k.Check,
						target.String(), ms.String()))
			default:
				res.PessimisticGroups++
			}
		}
	}
	return unresolved, nil
}
