package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"modemerge/internal/graph"
	"modemerge/internal/incr"
	"modemerge/internal/library"
	"modemerge/internal/sdc"
)

// NonMergeable explains why a mode pair cannot merge.
type NonMergeable struct {
	A, B   string
	Reason string
}

// Mergeability is the result of the mock-merge analysis: the mergeability
// graph of Figure 2.
type Mergeability struct {
	ModeNames []string
	// Edge[i][j] reports that modes i and j are mergeable.
	Edge [][]bool
	// Conflicts lists the reasons for non-mergeable pairs.
	Conflicts []NonMergeable
}

// AnalyzeMergeability performs the paper's mock run of preliminary mode
// merging on every mode pair and builds the mergeability graph. A pair is
// non-mergeable when corresponding clock-based constraints or drive/load
// constraints disagree beyond the tolerance, or when the clock union
// would force one mode's generated clock to conflict with another clock
// of the same name and derivation point.
func AnalyzeMergeability(g *graph.Graph, modes []*sdc.Mode, opt Options) (*Mergeability, error) {
	mb, _, err := analyzeMergeability(g, modes, opt)
	return mb, err
}

// pairCacheStats reports how the pair-verdict cache fared during one
// mergeability analysis, for trace counters and service stats.
type pairCacheStats struct{ hits, misses int64 }

func analyzeMergeability(g *graph.Graph, modes []*sdc.Mode, opt Options) (*Mergeability, pairCacheStats, error) {
	opt = opt.withDefaults()
	n := len(modes)
	mb := &Mergeability{
		ModeNames: make([]string, n),
		Edge:      make([][]bool, n),
	}
	for i, m := range modes {
		mb.ModeNames[i] = m.Name
		mb.Edge[i] = make([]bool, n)
	}
	// Mock merges are independent per pair: fan them out on the bounded
	// pool into an index-addressed result array, then reduce sequentially
	// in pair order so Edge and Conflicts come out identical to the
	// sequential path.
	type pairIdx struct{ i, j int }
	pairs := make([]pairIdx, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pairIdx{i, j})
		}
	}
	var st pairCacheStats
	// evalRound mock-merges every pair of one effective mode set and
	// returns the per-pair conflict reasons for that set.
	evalRound := func(roundModes []*sdc.Mode) []string {
		rr := make([]string, len(pairs))
		if opt.Cache != nil {
			// Incremental path: verdicts are addressed by the two modes'
			// canonical SDC texts + tolerance, so after editing one mode of
			// N only its N−1 pairs re-run mock merges. Corner rounds key by
			// their effective (overlay-applied) texts, so verdicts are
			// naturally per corner.
			texts := make([]string, n)
			for i, m := range roundModes {
				texts[i] = sdc.Write(m)
			}
			keys := make([]string, len(pairs))
			var missed []int
			for k, p := range pairs {
				keys[k] = pairVerdictKey(opt.Tolerance, texts[p.i], texts[p.j])
				if b, ok := opt.Cache.GetBytes(incr.GranPair, keys[k]); ok {
					if r, valid := decodePairVerdict(b); valid {
						rr[k] = r
						st.hits++
						continue
					}
				}
				missed = append(missed, k)
			}
			st.misses += int64(len(missed))
			forEachParallel(context.Background(), len(missed), opt.parallelism(), func(m int) {
				k := missed[m]
				rr[k] = mockMerge(roundModes[pairs[k].i], roundModes[pairs[k].j], opt.Tolerance)
			})
			for _, k := range missed {
				opt.Cache.PutBytes(incr.GranPair, keys[k], encodePairVerdict(rr[k]))
			}
		} else {
			forEachParallel(context.Background(), len(pairs), opt.parallelism(), func(k int) {
				rr[k] = mockMerge(roundModes[pairs[k].i], roundModes[pairs[k].j], opt.Tolerance)
			})
		}
		return rr
	}

	reasons := make([]string, len(pairs))
	if len(opt.Corners) == 0 {
		reasons = evalRound(modes)
	} else {
		// Corner-aware rule: a pair is mergeable iff it is mergeable in
		// every corner's effective (overlay-applied) mode texts; the first
		// conflicting corner, in corner order, names the reason. Corners
		// without overlays share the base texts — derates scale delays,
		// never constraint values, so they cannot change the mock merge.
		if err := library.ValidateCorners(opt.Corners); err != nil {
			return nil, st, fmt.Errorf("core: %w", err)
		}
		for c := range opt.Corners {
			crn := &opt.Corners[c]
			eff := modes
			if crn.SDC != "" {
				eff = make([]*sdc.Mode, n)
				for i, m := range modes {
					em, err := applyCornerOverlay(g.Design, m, crn)
					if err != nil {
						return nil, st, err
					}
					eff[i] = em
				}
			}
			rr := evalRound(eff)
			for k := range pairs {
				if reasons[k] == "" && rr[k] != "" {
					reasons[k] = "corner " + crn.Name + ": " + rr[k]
				}
			}
		}
	}
	for k, p := range pairs {
		if reasons[k] == "" {
			mb.Edge[p.i][p.j] = true
			mb.Edge[p.j][p.i] = true
		} else {
			mb.Conflicts = append(mb.Conflicts, NonMergeable{
				A: modes[p.i].Name, B: modes[p.j].Name, Reason: reasons[k]})
		}
	}
	return mb, st, nil
}

// sortedKeys returns the keys of a string-keyed map in sorted order, so
// first-conflict selection below never depends on map iteration order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// mockMerge checks one pair; it returns "" when mergeable or the first
// conflict found (in sorted key order, so the reason is deterministic).
func mockMerge(a, b *sdc.Mode, tol float64) string {
	within := func(x, y float64) bool {
		scale := math.Max(math.Abs(x), math.Abs(y))
		return math.Abs(x-y) <= tol*scale
	}

	// Corresponding clocks: same sources + waveform → same merged clock.
	// Their latency/uncertainty/transition values must agree within
	// tolerance.
	type clockVals struct {
		latency, srcLatency, uncertainty, transition float64
		hasLat, hasSrcLat, hasUnc, hasTr             bool
	}
	collect := func(m *sdc.Mode) map[string]*clockVals {
		out := map[string]*clockVals{}
		keyOf := map[string]string{} // local name → union key
		for _, c := range m.Clocks {
			key := c.SourceKey() + "|" + c.WaveformKey()
			keyOf[c.Name] = key
			out[key] = &clockVals{}
		}
		for _, l := range m.ClockLatencies {
			for _, cn := range l.Clocks {
				if v, ok := out[keyOf[cn]]; ok {
					if l.Source {
						v.srcLatency, v.hasSrcLat = l.Value, true
					} else {
						v.latency, v.hasLat = l.Value, true
					}
				}
			}
		}
		for _, u := range m.ClockUncertainties {
			for _, cn := range u.Clocks {
				if v, ok := out[keyOf[cn]]; ok {
					v.uncertainty, v.hasUnc = math.Max(v.uncertainty, u.Value), true
				}
			}
		}
		for _, tr := range m.ClockTransitions {
			for _, cn := range tr.Clocks {
				if v, ok := out[keyOf[cn]]; ok {
					v.transition, v.hasTr = tr.Value, true
				}
			}
		}
		return out
	}
	va, vb := collect(a), collect(b)
	for _, key := range sortedKeys(va) {
		ca := va[key]
		cb, shared := vb[key]
		if !shared {
			continue
		}
		if ca.hasLat && cb.hasLat && !within(ca.latency, cb.latency) {
			return fmt.Sprintf("clock latency differs beyond tolerance (%g vs %g)", ca.latency, cb.latency)
		}
		if ca.hasSrcLat && cb.hasSrcLat && !within(ca.srcLatency, cb.srcLatency) {
			return fmt.Sprintf("source latency differs beyond tolerance (%g vs %g)", ca.srcLatency, cb.srcLatency)
		}
		if ca.hasUnc && cb.hasUnc && !within(ca.uncertainty, cb.uncertainty) {
			return fmt.Sprintf("clock uncertainty differs beyond tolerance (%g vs %g)", ca.uncertainty, cb.uncertainty)
		}
		if ca.hasTr && cb.hasTr && !within(ca.transition, cb.transition) {
			return fmt.Sprintf("clock transition differs beyond tolerance (%g vs %g)", ca.transition, cb.transition)
		}
	}

	// Drive/load environment must agree within tolerance per port.
	portVals := func(m *sdc.Mode) (tr, load, drive map[string]float64, cells map[string]string) {
		tr, load, drive = map[string]float64{}, map[string]float64{}, map[string]float64{}
		cells = map[string]string{}
		for _, t := range m.InputTransitions {
			for _, p := range t.Ports {
				tr[p.Name] = t.Value
			}
		}
		for _, l := range m.Loads {
			for _, p := range l.Ports {
				load[p.Name] = l.Value
			}
		}
		for _, dc := range m.DrivingCells {
			for _, p := range dc.Ports {
				if dc.CellName != "" {
					cells[p.Name] = dc.CellName
				} else {
					drive[p.Name] = dc.Resistance
				}
			}
		}
		return
	}
	trA, loadA, drvA, cellA := portVals(a)
	trB, loadB, drvB, cellB := portVals(b)
	for _, port := range sortedKeys(trA) {
		if y, ok := trB[port]; ok && !within(trA[port], y) {
			return fmt.Sprintf("input transition on %s differs beyond tolerance (%g vs %g)", port, trA[port], y)
		}
	}
	for _, port := range sortedKeys(loadA) {
		if y, ok := loadB[port]; ok && !within(loadA[port], y) {
			return fmt.Sprintf("load on %s differs beyond tolerance (%g vs %g)", port, loadA[port], y)
		}
	}
	for _, port := range sortedKeys(drvA) {
		if y, ok := drvB[port]; ok && !within(drvA[port], y) {
			return fmt.Sprintf("drive on %s differs beyond tolerance (%g vs %g)", port, drvA[port], y)
		}
	}
	for _, port := range sortedKeys(cellA) {
		if y, ok := cellB[port]; ok && cellA[port] != y {
			return fmt.Sprintf("driving cell on %s differs (%s vs %s)", port, cellA[port], y)
		}
	}
	return ""
}

// Cliques greedily partitions the mergeability graph into maximal merge
// groups (the paper uses a greedy algorithm "as the number of modes is
// small"). Modes are seeded in input order; each clique greedily absorbs
// every remaining mode adjacent to all current members.
func (mb *Mergeability) Cliques() [][]int {
	n := len(mb.ModeNames)
	assigned := make([]bool, n)
	var cliques [][]int
	for i := 0; i < n; i++ {
		if assigned[i] {
			continue
		}
		clique := []int{i}
		assigned[i] = true
		for j := i + 1; j < n; j++ {
			if assigned[j] {
				continue
			}
			ok := true
			for _, member := range clique {
				if !mb.Edge[member][j] {
					ok = false
					break
				}
			}
			if ok {
				clique = append(clique, j)
				assigned[j] = true
			}
		}
		cliques = append(cliques, clique)
	}
	return cliques
}

// GroupNames renders cliques as mode-name lists.
func (mb *Mergeability) GroupNames(cliques [][]int) [][]string {
	out := make([][]string, len(cliques))
	for i, c := range cliques {
		for _, m := range c {
			out[i] = append(out[i], mb.ModeNames[m])
		}
	}
	return out
}

// PlanMerge runs the mergeability analysis and greedy clique scheduling
// — the planning half of MergeAll — recording the "mergeability" trace
// span and stage timing exactly like MergeAll. The returned cliques are
// independent units of work: each can be merged in isolation (see
// MergeClique) in any order, on any node, and the results reassembled in
// clique order are byte-identical to a sequential MergeAll.
func PlanMerge(g *graph.Graph, modes []*sdc.Mode, opt Options) (*Mergeability, [][]int, error) {
	sp := opt.Trace.Child("mergeability")
	done := opt.stage("mergeability")
	mb, pst, err := analyzeMergeability(g, modes, opt)
	if err != nil {
		sp.Finish()
		return nil, nil, err
	}
	cliques := mb.Cliques()
	sp.SetAttr("design", g.Design.Name)
	sp.Add("modes", int64(len(modes)))
	sp.Add("cliques", int64(len(cliques)))
	sp.Add("conflicts", int64(len(mb.Conflicts)))
	if opt.Cache != nil {
		sp.Add("pair_cache_hits", pst.hits)
		sp.Add("pair_cache_misses", pst.misses)
	}
	sp.Finish()
	done()
	return mb, cliques, nil
}

// MergeClique merges one already-planned clique of member modes into a
// superset mode — the execution half of MergeAll, and the unit of work a
// distributed merge fabric ships to workers. It is idempotent and
// content-addressed: identical (design, options, members) always produce
// byte-identical output, so a clique merge lost to a dying worker can
// simply be re-run anywhere. A singleton group passes the mode through
// untouched with an empty report. With Options.Cache set, the merged
// artifact is looked up before computing and stored back after.
func MergeClique(cx context.Context, g *graph.Graph, group []*sdc.Mode, opt Options) (*sdc.Mode, *Report, error) {
	if len(group) == 0 {
		return nil, nil, fmt.Errorf("core: empty merge clique")
	}
	if len(group) == 1 {
		return group[0], &Report{}, nil
	}
	names := make([]string, len(group))
	for i, m := range group {
		names[i] = m.Name
	}
	copt := opt
	copt.Trace = opt.Trace.Child("merge:" + strings.Join(names, "+"))
	copt.Trace.SetAttr("design", g.Design.Name)
	copt.Trace.SetAttr("members", strings.Join(names, ","))
	var key string
	if opt.Cache != nil {
		// Incremental path: a clique whose members (and design +
		// options) are unchanged replays its merged mode and report
		// from the cache without building any contexts.
		memberTexts := make([]string, len(group))
		for i, m := range group {
			memberTexts[i] = sdc.Write(m)
		}
		key = cliqueKey(g, opt, opt.MergedName, memberTexts)
		if merged, report, ok := lookupClique(opt.Cache, key, g); ok {
			copt.Trace.Add("clique_cache_hit", 1)
			copt.Trace.Finish()
			return merged, report, nil
		}
		copt.Trace.Add("clique_cache_miss", 1)
	}
	if opt.Hierarchical != nil {
		merged, report, err := mergeHierClique(cx, g, opt.Hierarchical, group, copt)
		copt.Trace.Finish()
		if err != nil {
			return nil, nil, fmt.Errorf("merging %v hierarchically: %w", names, err)
		}
		if opt.Cache != nil {
			storeClique(opt.Cache, key, merged, report, nil)
		}
		return merged, report, nil
	}
	mg, err := newMergerWithGraph(cx, g, group, copt)
	if err != nil {
		copt.Trace.Finish()
		return nil, nil, err
	}
	merged, err := mg.Merge(cx)
	copt.Trace.Finish()
	if err != nil {
		return nil, nil, fmt.Errorf("merging %v: %w", names, err)
	}
	if opt.Cache != nil {
		storeClique(opt.Cache, key, merged, mg.Report, mg.stamps())
	}
	return merged, mg.Report, nil
}

// MergeAll analyzes mergeability, groups the modes into cliques and merges
// each clique, returning one merged mode per clique (singleton cliques
// pass the original mode through untouched). Cancelling cx aborts between
// cliques and inside each merge with the context error. It is PlanMerge
// followed by a sequential MergeClique per clique; callers wanting
// concurrent or distributed clique execution use those pieces directly
// (see internal/fabric) and get byte-identical results.
func MergeAll(cx context.Context, g *graph.Graph, modes []*sdc.Mode, opt Options) ([]*sdc.Mode, []*Report, *Mergeability, error) {
	mb, cliques, err := PlanMerge(g, modes, opt)
	if err != nil {
		return nil, nil, nil, err
	}
	var out []*sdc.Mode
	var reports []*Report
	for _, clique := range cliques {
		if err := cx.Err(); err != nil {
			return nil, nil, mb, err
		}
		group := make([]*sdc.Mode, len(clique))
		for i, m := range clique {
			group[i] = modes[m]
		}
		merged, report, err := MergeClique(cx, g, group, opt)
		if err != nil {
			return nil, nil, mb, err
		}
		out = append(out, merged)
		reports = append(reports, report)
	}
	return out, reports, mb, nil
}

// FormatMergeability renders the mergeability graph as text (Figure 2
// companion).
func FormatMergeability(mb *Mergeability, cliques [][]int) string {
	var b []byte
	b = append(b, "Mergeability graph:\n"...)
	for i, name := range mb.ModeNames {
		adj := []string{}
		for j := range mb.ModeNames {
			if i != j && mb.Edge[i][j] {
				adj = append(adj, mb.ModeNames[j])
			}
		}
		sort.Strings(adj)
		b = append(b, fmt.Sprintf("  %-12s -- %v\n", name, adj)...)
	}
	b = append(b, "Merge groups (greedy cliques):\n"...)
	for i, names := range mb.GroupNames(cliques) {
		b = append(b, fmt.Sprintf("  M%d: %v\n", i+1, names)...)
	}
	if len(mb.Conflicts) > 0 {
		b = append(b, "Conflicts:\n"...)
		for _, c := range mb.Conflicts {
			b = append(b, fmt.Sprintf("  %s / %s: %s\n", c.A, c.B, c.Reason)...)
		}
	}
	return string(b)
}
