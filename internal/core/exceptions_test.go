package core

import (
	"context"
	"strings"
	"testing"

	"modemerge/internal/sdc"
)

// TestMergeExceptionsUniquification pins the §3.1.9/§3.1.10 subset-
// exception decision table at the preliminary-merge level (union the
// clocks, then merge exceptions — no refinement, so the counters reflect
// exactly what the intersection/uniquification logic decided).
func TestMergeExceptionsUniquification(t *testing.T) {
	bothClocks := `
create_clock -name clkA -period 10 [get_ports clk1]
create_clock -name clkB -period 10 [get_ports clk2]
`
	tests := []struct {
		name  string
		modes map[string]string
		order []string

		wantDropped    int
		wantUniquified int
		wantMergedKeys []string // substrings that must appear in merged exception keys
		banMergedKeys  []string // substrings that must NOT appear
		wantWarnings   []string // substrings of expected warnings
	}{
		{
			// The exception's launch clock (clkA through rA/CP) also
			// exists in the mode lacking the exception: restricting to
			// launch clocks is unsound, the false path is dropped (and
			// left for refinement to recover).
			name: "subset FP with overlapping launch clock is dropped",
			modes: map[string]string{
				"M1": bothClocks + "set_false_path -from [get_pins rA/CP] -to [get_pins rX/D]\n",
				"M2": bothClocks,
			},
			order:         []string{"M1", "M2"},
			wantDropped:   1,
			banMergedKeys: []string{"rA/CP"},
		},
		{
			// The exception is anchored on clkB, which only the carrying
			// mode defines: inert in every other mode, so it uniquifies
			// (launch restricted to clkB) instead of being dropped.
			name: "subset FP inert in other modes is uniquified",
			modes: map[string]string{
				"M1": bothClocks + "set_false_path -from [get_clocks clkB] -to [get_clocks clkA]\n",
				"M2": "create_clock -name clkA -period 10 [get_ports clk1]\n",
			},
			order:          []string{"M1", "M2"},
			wantUniquified: 1,
			wantMergedKeys: []string{"clkB"},
		},
		{
			// The startpoint port has no launch clocks (no input delay
			// associates a clock with in1): the launch-clock intersection
			// is empty, uniquification has nothing to anchor on, and the
			// false path is dropped.
			name: "subset FP with empty launch-clock set is dropped",
			modes: map[string]string{
				"M1": bothClocks + "set_false_path -from [get_ports in1] -to [get_pins rX/D]\n",
				"M2": bothClocks,
			},
			order:         []string{"M1", "M2"},
			wantDropped:   1,
			banMergedKeys: []string{"in1"},
		},
		{
			// Disjoint exception sets: no exception is common to all
			// modes, so nothing joins directly. The subset multicycle
			// (a relaxation) is dropped with a warning; the subset
			// max_delay (a tightening) is kept pessimistically with a
			// warning.
			name: "disjoint sets: subset MCP dropped, subset max_delay kept",
			modes: map[string]string{
				"M1": bothClocks + "set_max_delay 5 -from [get_pins rA/CP] -to [get_pins rX/D]\n",
				"M2": bothClocks + "set_multicycle_path 2 -setup -from [get_pins rB/CP]\n",
			},
			order:          []string{"M1", "M2"},
			wantDropped:    1,
			wantMergedKeys: []string{"max_delay"},
			banMergedKeys:  []string{"multicycle"},
			wantWarnings: []string{
				"keeping it applies the bound to all modes' paths",
				"dropping it makes the merged mode pessimistic",
			},
		},
		{
			// An exception present in every mode joins the merged mode
			// directly: no drop, no uniquification.
			name: "common exception joins directly",
			modes: map[string]string{
				"M1": bothClocks + "set_false_path -from [get_pins rA/CP] -to [get_pins rX/D]\n",
				"M2": bothClocks + "set_false_path -from [get_pins rA/CP] -to [get_pins rX/D]\n",
			},
			order:          []string{"M1", "M2"},
			wantMergedKeys: []string{"rA/CP"},
		},
	}

	g := paperGraph(t)
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var modes []*sdc.Mode
			for _, n := range tc.order {
				modes = append(modes, parseMode(t, g, n, tc.modes[n]))
			}
			mg, err := newMergerWithGraph(context.Background(), g, modes, Options{})
			if err != nil {
				t.Fatal(err)
			}
			mg.unionClocks()
			if err := mg.mergeExceptions(); err != nil {
				t.Fatal(err)
			}
			if mg.Report.DroppedExceptions != tc.wantDropped {
				t.Errorf("DroppedExceptions = %d, want %d", mg.Report.DroppedExceptions, tc.wantDropped)
			}
			if mg.Report.UniquifiedExceptions != tc.wantUniquified {
				t.Errorf("UniquifiedExceptions = %d, want %d", mg.Report.UniquifiedExceptions, tc.wantUniquified)
			}
			var keys []string
			for _, e := range mg.merged.Exceptions {
				keys = append(keys, e.Key())
			}
			all := strings.Join(keys, "\n")
			for _, want := range tc.wantMergedKeys {
				if !strings.Contains(all, want) {
					t.Errorf("merged exceptions lack %q:\n%s", want, all)
				}
			}
			for _, ban := range tc.banMergedKeys {
				if strings.Contains(all, ban) {
					t.Errorf("merged exceptions unexpectedly contain %q:\n%s", ban, all)
				}
			}
			warnings := strings.Join(mg.Report.Warnings, "\n")
			for _, want := range tc.wantWarnings {
				if !strings.Contains(warnings, want) {
					t.Errorf("warnings lack %q:\n%s", want, warnings)
				}
			}
		})
	}
}

// TestMergeExceptionsInjectedKeepSubset locks the fault-injection hook the
// differential fuzzing harness relies on: with KeepSubsetExceptions the
// subset exception joins verbatim (the naive textual-union bug) and the
// full merge becomes detectably optimistic.
func TestMergeExceptionsInjectedKeepSubset(t *testing.T) {
	g := paperGraph(t)
	srcs := map[string]string{
		"M1": "create_clock -name clkA -period 10 [get_ports clk1]\nset_false_path -from [get_pins rA/CP] -to [get_pins rX/D]\n",
		"M2": "create_clock -name clkA -period 10 [get_ports clk1]\n",
	}
	var modes []*sdc.Mode
	for _, n := range []string{"M1", "M2"} {
		modes = append(modes, parseMode(t, g, n, srcs[n]))
	}
	opt := Options{Inject: FaultInjection{KeepSubsetExceptions: true}}
	mg, err := newMergerWithGraph(context.Background(), g, modes, opt)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := mg.Merge(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range merged.Exceptions {
		if strings.Contains(e.Key(), "rA/CP") {
			found = true
		}
	}
	if !found {
		t.Fatal("injected fault did not keep the subset exception")
	}
	res, err := CheckEquivalence(context.Background(), g, modes, merged, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent() {
		t.Fatal("equivalence checker missed the injected optimism")
	}
}
