package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"modemerge/internal/graph"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
	"modemerge/internal/sdc"
	"modemerge/internal/sta"
)

func TestMergeGeneratedClock(t *testing.T) {
	// Mode A uses the root clock through the mux; mode B divides it at
	// the mux output. The merged mode must carry both (the -add form) and
	// declare them exclusive because the undivided clock captures nothing
	// in mode B.
	srcs := map[string]string{
		"A": `
create_clock -name clkA -period 10 [get_ports clk1]
`,
		"B": `
create_clock -name clkA -period 10 [get_ports clk1]
create_generated_clock -name gdiv -source [get_ports clk1] -divide_by 2 [get_pins mux1/Z]
`,
	}
	g := paperGraph(t)
	merged, _ := mergeModes(t, g, srcs, "A", "B")
	if merged.ClockByName("gdiv") == nil {
		t.Fatal("generated clock lost in merge")
	}
	if got := len(merged.Clocks); got != 2 {
		t.Fatalf("merged clocks = %v", merged.ClockNames())
	}
	requireEquivalent(t, g, srcs, merged, "A", "B")
}
func TestMergeVirtualClocks(t *testing.T) {
	srcs := map[string]string{
		"A": `
create_clock -name clkA -period 10 [get_ports clk1]
create_clock -name vio -period 10
set_output_delay 2 -clock vio [get_ports out1]
`,
		"B": `
create_clock -name clkA -period 10 [get_ports clk1]
create_clock -name vio -period 10
set_output_delay 3 -clock vio [get_ports out1]
`,
	}
	g := paperGraph(t)
	merged, _ := mergeModes(t, g, srcs, "A", "B")
	v := merged.ClockByName("vio")
	if v == nil || !v.Virtual() {
		t.Fatalf("virtual clock lost: %v", merged.ClockNames())
	}
	// Both output delays survive (union).
	if len(merged.IODelays) != 2 {
		t.Errorf("io delays = %d, want 2", len(merged.IODelays))
	}
	requireEquivalent(t, g, srcs, merged, "A", "B")
}
func TestMergeDeterministic(t *testing.T) {
	g := paperGraph(t)
	run := func() string {
		merged, _ := mergeModes(t, g, set6, "A", "B")
		return sdc.Write(merged)
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("merge output differs between runs:\n--- first\n%s\n--- run %d\n%s", first, i, got)
		}
	}
}
func TestMergeOrderIndependentBehaviour(t *testing.T) {
	// Merging [A,B] and [B,A] may name things differently, but both
	// results must be equivalent to the same individual modes.
	g := paperGraph(t)
	ab, _ := mergeModes(t, g, set6, "A", "B")
	ba, _ := mergeModes(t, g, set6, "B", "A")
	requireEquivalent(t, g, set6, ab, "A", "B")
	requireEquivalent(t, g, set6, ba, "A", "B")
}
func TestHoldOnlyFalsePathMerge(t *testing.T) {
	srcs := map[string]string{
		"A": `
create_clock -name clkA -period 10 [get_ports clk1]
set_false_path -hold -to [get_pins rX/D]
`,
		"B": `
create_clock -name clkA -period 10 [get_ports clk1]
set_false_path -hold -to [get_pins rX/D]
`,
	}
	g := paperGraph(t)
	merged, _ := mergeModes(t, g, srcs, "A", "B")
	found := false
	for _, e := range merged.Exceptions {
		if e.Kind == sdc.FalsePath && e.SetupHold == sdc.MinOnly {
			found = true
		}
	}
	if !found {
		t.Errorf("hold-only false path lost:\n%s", sdc.Write(merged))
	}
	requireEquivalent(t, g, srcs, merged, "A", "B")
}
func TestKeptMaxDelaySubsetMode(t *testing.T) {
	// A max_delay present in one mode only, on a shared clock: cannot be
	// uniquified, must be KEPT (pessimistic-safe), never dropped.
	srcs := map[string]string{
		"A": `
create_clock -name clkA -period 10 [get_ports clk1]
set_max_delay 4 -to [get_pins rX/D]
`,
		"B": `
create_clock -name clkA -period 10 [get_ports clk1]
`,
	}
	g := paperGraph(t)
	merged, rep := mergeModes(t, g, srcs, "A", "B")
	found := false
	for _, e := range merged.Exceptions {
		if e.Kind == sdc.MaxDelay && e.Value == 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("subset max_delay dropped:\n%s", sdc.Write(merged))
	}
	if len(rep.Warnings) == 0 {
		t.Error("expected a pessimism warning")
	}
	requireEquivalent(t, g, srcs, merged, "A", "B")
}
func TestMergedModeReusableAsInput(t *testing.T) {
	// Merge A+B, then merge the result with a third mode: the flow must
	// accept its own output.
	g := paperGraph(t)
	ab, _ := mergeModes(t, g, set6, "A", "B")
	text := sdc.Write(ab)
	reparsed := parseMode(t, g, "AB", text)
	third := parseMode(t, g, "C", `
create_clock -name clkA -period 10 [get_ports clk1]
set_false_path -to rX/D
`)
	mg, err := newMergerWithGraph(context.Background(), g, []*sdc.Mode{reparsed, third}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mg.Merge(context.Background()); err != nil {
		t.Fatalf("re-merge failed: %v", err)
	}
}
func TestToleranceOption(t *testing.T) {
	g := paperGraph(t)
	mk := func(lat string) *sdc.Mode {
		return parseMode(t, g, "m"+lat, `
create_clock -name clkA -period 10 [get_ports clk1]
set_clock_latency `+lat+` [get_clocks clkA]
`)
	}
	a, b := mk("1.00"), mk("1.04")
	// 4% apart: mergeable at 5% tolerance, not at 1%.
	mb5, err := AnalyzeMergeability(g, []*sdc.Mode{a, b}, Options{Tolerance: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !mb5.Edge[0][1] {
		t.Error("4% latency difference must merge at 5% tolerance")
	}
	mb1, err := AnalyzeMergeability(g, []*sdc.Mode{a, b}, Options{Tolerance: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if mb1.Edge[0][1] {
		t.Error("4% latency difference must not merge at 1% tolerance")
	}
}
func TestCliquesGreedyMaximal(t *testing.T) {
	// 5 modes: 0-1-2 mutually mergeable, 3-4 mergeable, no cross edges.
	mb := &Mergeability{ModeNames: []string{"a", "b", "c", "d", "e"}}
	mb.Edge = make([][]bool, 5)
	for i := range mb.Edge {
		mb.Edge[i] = make([]bool, 5)
	}
	link := func(i, j int) { mb.Edge[i][j], mb.Edge[j][i] = true, true }
	link(0, 1)
	link(0, 2)
	link(1, 2)
	link(3, 4)
	cliques := mb.Cliques()
	if len(cliques) != 2 || len(cliques[0]) != 3 || len(cliques[1]) != 2 {
		t.Errorf("cliques = %v", mb.GroupNames(cliques))
	}
	// Every mode appears exactly once.
	seen := map[int]bool{}
	for _, c := range cliques {
		for _, m := range c {
			if seen[m] {
				t.Errorf("mode %d in two cliques", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != 5 {
		t.Errorf("cliques cover %d of 5 modes", len(seen))
	}
}
func TestSingleModeGroupPassesThrough(t *testing.T) {
	g := paperGraph(t)
	lone := parseMode(t, g, "lone", `
create_clock -name clkA -period 10 [get_ports clk1]
set_input_transition 0.9 [get_ports in1]
`)
	other := parseMode(t, g, "other", `
create_clock -name clkA -period 10 [get_ports clk1]
set_input_transition 0.1 [get_ports in1]
`)
	out, _, _, err := MergeAll(context.Background(), g, []*sdc.Mode{lone, other}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("merged = %d modes, want 2 passthroughs", len(out))
	}
	// Unmerged modes pass through untouched (same pointer).
	if out[0] != lone && out[1] != lone {
		t.Error("singleton mode was not passed through unchanged")
	}
}

// randomCircuit builds a small random DAG of gates between two register
// banks, deterministic per seed.
func randomCircuit(seed int64) *netlist.Design {
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder(fmt.Sprintf("rand%d", seed), library.Default())
	b.Port("ck1", netlist.In)
	b.Port("ck2", netlist.In)
	b.Port("sel", netlist.In)
	b.Port("din", netlist.In)
	b.Port("dout", netlist.Out)
	b.Inst("MUX2", "cmux", map[string]string{"I0": "ck1", "I1": "ck2", "S": "sel", "Z": "gck"})
	nLaunch := 2 + rng.Intn(3)
	var sigs []string
	for i := 0; i < nLaunch; i++ {
		q := fmt.Sprintf("q%d", i)
		clk := "ck1"
		if rng.Intn(3) == 0 {
			clk = "gck"
		}
		b.Inst("DFF", fmt.Sprintf("L%d", i), map[string]string{"CP": clk, "D": "din", "Q": q})
		sigs = append(sigs, q)
	}
	gates := []string{"AND2", "OR2", "XOR2", "NAND2", "INV", "BUF"}
	nGates := 3 + rng.Intn(6)
	for i := 0; i < nGates; i++ {
		cell := gates[rng.Intn(len(gates))]
		z := fmt.Sprintf("n%d", i)
		conns := map[string]string{"Z": z}
		for _, pin := range library.Default().Cell(cell).Inputs() {
			conns[pin] = sigs[rng.Intn(len(sigs))]
		}
		b.Inst(cell, fmt.Sprintf("G%d", i), conns)
		sigs = append(sigs, z)
	}
	nCap := 2 + rng.Intn(3)
	for i := 0; i < nCap; i++ {
		clk := "ck1"
		if rng.Intn(3) == 0 {
			clk = "gck"
		}
		q := "dout"
		if i > 0 {
			q = fmt.Sprintf("cq%d", i)
		}
		b.Inst("DFF", fmt.Sprintf("C%d", i), map[string]string{
			"CP": clk, "D": sigs[len(sigs)-1-i%len(sigs)], "Q": q})
	}
	return b.MustBuild()
}

// randomMode writes a random SDC mode for the random circuit.
func randomMode(d *netlist.Design, rng *rand.Rand, name string) string {
	var s string
	period := []string{"2", "4", "10"}[rng.Intn(3)]
	switch rng.Intn(3) {
	case 0:
		s += "create_clock -name CK -period " + period + " [get_ports ck1]\n"
	case 1:
		s += "create_clock -name CK -period " + period + " [get_ports ck2]\n"
	default:
		s += "create_clock -name CK -period " + period + " [get_ports ck1]\n"
		s += "create_clock -name CK2 -period 8 [get_ports ck2]\n"
	}
	if rng.Intn(2) == 0 {
		s += fmt.Sprintf("set_case_analysis %d [get_ports sel]\n", rng.Intn(2))
	}
	if rng.Intn(2) == 0 {
		s += "set_input_delay 0.5 -clock CK [get_ports din]\n"
	}
	if rng.Intn(2) == 0 {
		s += "set_output_delay 0.5 -clock CK [get_ports dout]\n"
	}
	// Random exceptions on existing objects.
	for i := 0; i < rng.Intn(3); i++ {
		switch rng.Intn(3) {
		case 0:
			s += fmt.Sprintf("set_false_path -from [get_pins L%d/CP]\n", rng.Intn(2))
		case 1:
			s += "set_false_path -to [get_pins C0/D]\n"
		default:
			s += fmt.Sprintf("set_multicycle_path %d -setup -to [get_pins C0/D]\n", 2+rng.Intn(2))
		}
	}
	return s
}

// TestRandomMergesNeverOptimistic is the killer property test: for many
// random circuits and random mode pairs, the merged mode must never relax
// any individual mode (the correct-by-construction claim).
func TestRandomMergesNeverOptimistic(t *testing.T) {
	iterations := 60
	if testing.Short() {
		iterations = 10
	}
	for seed := int64(0); seed < int64(iterations); seed++ {
		d := randomCircuit(seed)
		g, err := graph.Build(d)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed * 7919))
		srcA := randomMode(d, rng, "A")
		srcB := randomMode(d, rng, "B")
		a, _, err := sdc.Parse("A", srcA, d)
		if err != nil {
			t.Fatalf("seed %d mode A: %v\n%s", seed, err, srcA)
		}
		bm, _, err := sdc.Parse("B", srcB, d)
		if err != nil {
			t.Fatalf("seed %d mode B: %v\n%s", seed, err, srcB)
		}
		mg, err := newMergerWithGraph(context.Background(), g, []*sdc.Mode{a, bm}, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		merged, err := mg.Merge(context.Background())
		if err != nil {
			t.Fatalf("seed %d merge: %v\nA:\n%s\nB:\n%s", seed, err, srcA, srcB)
		}
		// The written SDC must re-parse and still be equivalent.
		reparsed, _, err := sdc.Parse(merged.Name, sdc.Write(merged), d)
		if err != nil {
			t.Fatalf("seed %d: merged SDC does not re-parse: %v\n%s", seed, err, sdc.Write(merged))
		}
		res, err := CheckEquivalence(context.Background(), g, []*sdc.Mode{a, bm}, reparsed, Options{})
		if err != nil {
			t.Fatalf("seed %d equivalence: %v", seed, err)
		}
		if !res.Equivalent() {
			t.Errorf("seed %d: merged mode is optimistic:\nA:\n%s\nB:\n%s\nmerged:\n%s\nmismatches: %v",
				seed, srcA, srcB, sdc.Write(merged), res.OptimisticMismatches)
		}
	}
}

// TestRandomMergedSlackNeverOptimistic cross-checks the relation-level
// guarantee at the slack level: the merged worst setup slack per endpoint
// is never larger (more optimistic) than the individual worst, beyond
// rounding.
func TestRandomMergedSlackNeverOptimistic(t *testing.T) {
	iterations := 30
	if testing.Short() {
		iterations = 6
	}
	for seed := int64(100); seed < 100+int64(iterations); seed++ {
		d := randomCircuit(seed)
		g, err := graph.Build(d)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		a, _, err := sdc.Parse("A", randomMode(d, rng, "A"), d)
		if err != nil {
			t.Fatal(err)
		}
		bm, _, err := sdc.Parse("B", randomMode(d, rng, "B"), d)
		if err != nil {
			t.Fatal(err)
		}
		mg, err := newMergerWithGraph(context.Background(), g, []*sdc.Mode{a, bm}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		merged, err := mg.Merge(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		worst := func(modes ...*sdc.Mode) map[string]float64 {
			out := map[string]float64{}
			for _, m := range modes {
				ctx, err := sta.NewContext(g, m, sta.Options{})
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range ctx.AnalyzeEndpoints(context.Background()) {
					if !r.HasSetup {
						continue
					}
					if w, ok := out[r.Name]; !ok || r.SetupSlack < w {
						out[r.Name] = r.SetupSlack
					}
				}
			}
			return out
		}
		ind := worst(a, bm)
		mrg := worst(merged)
		for name, iw := range ind {
			if mw, ok := mrg[name]; ok && mw > iw+1e-6 {
				t.Errorf("seed %d endpoint %s: merged slack %g more optimistic than individual %g",
					seed, name, mw, iw)
			}
		}
	}
}

func TestMergeErrorPaths(t *testing.T) {
	g := paperGraph(t)
	if _, _, err := Merge(context.Background(), g.Design, nil, Options{}); err == nil {
		t.Error("empty mode list accepted")
	}
	// A mode whose constraints reference objects missing from the design
	// fails context construction with a mode-named error.
	bad := &sdc.Mode{Name: "bad", Cases: []*sdc.CaseAnalysis{{
		Objects: []sdc.ObjRef{{Kind: sdc.PinObj, Name: "ghost/X"}},
	}}}
	ok := parseMode(t, g, "ok", `create_clock -name c -period 1 [get_ports clk1]`)
	if _, _, err := Merge(context.Background(), g.Design, []*sdc.Mode{ok, bad}, Options{}); err == nil {
		t.Error("unresolvable mode accepted")
	} else if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error does not name the failing mode: %v", err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Tolerance != 0.05 || o.MaxRefineIterations != 4 {
		t.Errorf("defaults = %+v", o)
	}
	o2 := Options{Tolerance: 0.2, MaxRefineIterations: 9}.withDefaults()
	if o2.Tolerance != 0.2 || o2.MaxRefineIterations != 9 {
		t.Errorf("explicit options overridden: %+v", o2)
	}
}

func TestMergedNameOption(t *testing.T) {
	g := paperGraph(t)
	a := parseMode(t, g, "alpha", `create_clock -name c -period 1 [get_ports clk1]`)
	b := parseMode(t, g, "beta", `create_clock -name c -period 1 [get_ports clk1]`)
	mg, err := newMergerWithGraph(context.Background(), g, []*sdc.Mode{a, b}, Options{MergedName: "custom"})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := mg.Merge(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if merged.Name != "custom" {
		t.Errorf("merged name = %q", merged.Name)
	}
}

func TestConvergenceWithinIterations(t *testing.T) {
	// Every merge in the suite must converge without the
	// "did not converge" warning.
	g := paperGraph(t)
	for _, srcs := range []map[string]string{set3, set4, set5, set6} {
		var names []string
		for n := range srcs {
			names = append(names, n)
		}
		sort.Strings(names)
		_, rep := mergeModes(t, g, srcs, names...)
		for _, w := range rep.Warnings {
			if strings.Contains(w, "converge") {
				t.Errorf("merge did not converge: %v", rep.Warnings)
			}
		}
		if rep.Iterations > 3 {
			t.Errorf("refinement took %d iterations", rep.Iterations)
		}
	}
}

// TestRandomTripleMergesNeverOptimistic extends the fuzz property to
// three-way merges, where uniquification and exclusivity interactions are
// richer.
func TestRandomTripleMergesNeverOptimistic(t *testing.T) {
	iterations := 25
	if testing.Short() {
		iterations = 5
	}
	for seed := int64(500); seed < 500+int64(iterations); seed++ {
		d := randomCircuit(seed)
		g, err := graph.Build(d)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed * 31))
		var modes []*sdc.Mode
		var srcs []string
		for i := 0; i < 3; i++ {
			src := randomMode(d, rng, fmt.Sprintf("m%d", i))
			m, _, err := sdc.Parse(fmt.Sprintf("m%d", i), src, d)
			if err != nil {
				t.Fatalf("seed %d: %v\n%s", seed, err, src)
			}
			modes = append(modes, m)
			srcs = append(srcs, src)
		}
		mg, err := newMergerWithGraph(context.Background(), g, modes, Options{})
		if err != nil {
			t.Fatal(err)
		}
		merged, err := mg.Merge(context.Background())
		if err != nil {
			t.Fatalf("seed %d merge: %v\nmodes:\n%s", seed, err, strings.Join(srcs, "\n---\n"))
		}
		res, err := CheckEquivalence(context.Background(), g, modes, merged, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent() {
			t.Errorf("seed %d: optimistic triple merge:\n%s\nmerged:\n%s\nmismatches: %v",
				seed, strings.Join(srcs, "\n---\n"), sdc.Write(merged), res.OptimisticMismatches)
		}
	}
}

func TestMergeMultiplyByGeneratedClock(t *testing.T) {
	srcs := map[string]string{
		"A": `
create_clock -name clkA -period 10 [get_ports clk1]
`,
		"B": `
create_clock -name clkA -period 10 [get_ports clk1]
create_generated_clock -name g2x -source [get_ports clk1] -multiply_by 2 [get_pins mux1/Z]
`,
	}
	g := paperGraph(t)
	merged, _ := mergeModes(t, g, srcs, "A", "B")
	g2x := merged.ClockByName("g2x")
	if g2x == nil || g2x.Period != 5 {
		t.Fatalf("multiplied clock wrong: %+v", g2x)
	}
	requireEquivalent(t, g, srcs, merged, "A", "B")
}

func TestMergeRespectsSetupHoldScopedExceptions(t *testing.T) {
	srcs := map[string]string{
		"A": `
create_clock -name clkA -period 10 [get_ports clk1]
set_false_path -setup -to [get_pins rX/D]
`,
		"B": `
create_clock -name clkA -period 10 [get_ports clk1]
set_false_path -setup -to [get_pins rX/D]
set_false_path -hold -to [get_pins rY/D]
`,
	}
	g := paperGraph(t)
	merged, _ := mergeModes(t, g, srcs, "A", "B")
	// Common -setup FP survives intersection; B-only -hold FP is dropped
	// and the hold check at rY/D must remain in the merged mode (mode A
	// times it).
	var setupFP bool
	for _, e := range merged.Exceptions {
		if e.Kind == sdc.FalsePath && e.SetupHold == sdc.MaxOnly {
			for _, p := range e.To.Pins {
				if p.Name == "rX/D" {
					setupFP = true
				}
			}
		}
	}
	if !setupFP {
		t.Errorf("common setup FP lost:\n%s", sdc.Write(merged))
	}
	requireEquivalent(t, g, srcs, merged, "A", "B")
}
