package core_test

import (
	"context"
	"fmt"
	"log"

	"modemerge/internal/core"
	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/sdc"
)

// ExampleMerge merges two modes of the paper's example circuit and prints
// the corrective constraints the refinement inferred.
func ExampleMerge() {
	design := gen.PaperCircuit()
	modeA, _, err := sdc.Parse("A", `
create_clock -name clkA -period 10 [get_ports clk1]
set_false_path -to rX/D
set_false_path -to rY/D
set_false_path -through inv3/Z
`, design)
	if err != nil {
		log.Fatal(err)
	}
	modeB, _, err := sdc.Parse("B", `
create_clock -name clkA -period 10 [get_ports clk1]
set_false_path -from rA/CP
set_false_path -to rZ/D
`, design)
	if err != nil {
		log.Fatal(err)
	}

	merged, report, err := core.Merge(context.Background(), design, []*sdc.Mode{modeA, modeB}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged %q with %d inferred false paths\n", merged.Name, report.AddedFalsePaths)
	for _, e := range merged.Exceptions {
		fmt.Print(sdc.WriteException(e))
	}
	// Output:
	// merged "A+B" with 3 inferred false paths
	// set_false_path -to [get_pins {rX/D}] -comment "inferred by relationship refinement"
	// set_false_path -from [get_pins {rA/CP}] -to [get_pins {rY/D}] -comment "inferred by relationship refinement"
	// set_false_path -from [get_pins {rC/CP}] -through [get_pins {inv3/A}] -to [get_pins {rZ/D}] -comment "inferred by pass-3 refinement"
}

// ExampleCheckEquivalence validates a hand-written superset mode.
func ExampleCheckEquivalence() {
	design := gen.PaperCircuit()
	g, err := graph.Build(design)
	if err != nil {
		log.Fatal(err)
	}
	individual, _, _ := sdc.Parse("ind", `
create_clock -name clkA -period 10 [get_ports clk1]
set_max_delay 1 -to [get_pins rX/D]
`, design)
	// A "merged" mode that silently dropped the max_delay.
	broken, _, _ := sdc.Parse("broken", `
create_clock -name clkA -period 10 [get_ports clk1]
`, design)
	res, err := core.CheckEquivalence(context.Background(), g, []*sdc.Mode{individual}, broken, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sign-off safe:", res.Equivalent())
	// Output:
	// sign-off safe: false
}

// ExampleAnalyzeMergeability groups modes into merge cliques.
func ExampleAnalyzeMergeability() {
	design := gen.PaperCircuit()
	g, err := graph.Build(design)
	if err != nil {
		log.Fatal(err)
	}
	mk := func(name, tr string) *sdc.Mode {
		m, _, err := sdc.Parse(name, `
create_clock -name clkA -period 10 [get_ports clk1]
set_input_transition `+tr+` [get_ports in1]
`, design)
		if err != nil {
			log.Fatal(err)
		}
		return m
	}
	modes := []*sdc.Mode{mk("fast1", "0.1"), mk("fast2", "0.1"), mk("slow", "0.9")}
	mb, err := core.AnalyzeMergeability(g, modes, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for i, names := range mb.GroupNames(mb.Cliques()) {
		fmt.Printf("M%d: %v\n", i+1, names)
	}
	// Output:
	// M1: [fast1 fast2]
	// M2: [slow]
}
