package core

import (
	"context"
	"testing"

	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/netlist"
	"modemerge/internal/sdc"
)

// hierFixture builds one hierarchical design + parsed mode family.
func hierFixture(t *testing.T, hspec gen.HierSpec, fspec gen.FamilySpec) (*graph.Graph, *netlist.HierDesign, []*sdc.Mode) {
	t.Helper()
	gd, err := gen.GenerateHier(hspec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(gd.Design)
	if err != nil {
		t.Fatal(err)
	}
	var modes []*sdc.Mode
	for _, m := range gd.Modes(fspec) {
		mode, _, err := sdc.Parse(m.Name, m.Text, g.Design)
		if err != nil {
			t.Fatalf("mode %s: %v", m.Name, err)
		}
		modes = append(modes, mode)
	}
	return g, gd.Hier, modes
}

func defaultHierFixture(t *testing.T) (*graph.Graph, *netlist.HierDesign, []*sdc.Mode) {
	return hierFixture(t,
		gen.HierSpec{Name: "hcore", Seed: 77, Domains: 2, BlocksPerDomain: 2,
			Stages: 2, RegsPerStage: 3, CloudDepth: 2, CrossPaths: 2, IOPairs: 2},
		gen.FamilySpec{Groups: 2, ModesPerGroup: []int{3, 2}, BasePeriod: 2})
}

// TestHierarchicalMergeEquivalence is the core guarantee: the stitched
// hierarchical merge forms the same cliques as the flat merge and is
// never optimistic — neither against the member modes nor against the
// flat merged mode.
func TestHierarchicalMergeEquivalence(t *testing.T) {
	g, hier, modes := defaultHierFixture(t)
	cx := context.Background()

	flat, _, fmb, err := MergeAll(cx, g, modes, Options{})
	if err != nil {
		t.Fatalf("flat merge: %v", err)
	}
	hmerged, hreps, hmb, err := MergeAll(cx, g, modes, Options{Hierarchical: hier})
	if err != nil {
		t.Fatalf("hier merge: %v", err)
	}

	fCliques, hCliques := fmb.Cliques(), hmb.Cliques()
	if len(fCliques) != len(hCliques) || len(flat) != len(hmerged) {
		t.Fatalf("clique structure differs: flat=%v hier=%v", fmb.GroupNames(fCliques), hmb.GroupNames(hCliques))
	}
	sawHarvestable := false
	for i, clique := range hCliques {
		if len(clique) == 1 {
			if hmerged[i] != modes[clique[0]] {
				t.Errorf("clique %d: singleton not passed through", i)
			}
			continue
		}
		members := make([]*sdc.Mode, len(clique))
		for j, m := range clique {
			members[j] = modes[m]
		}
		res, err := CheckEquivalence(cx, g, members, hmerged[i], Options{})
		if err != nil {
			t.Fatalf("clique %d vs members: %v", i, err)
		}
		if !res.Equivalent() {
			t.Errorf("clique %d: hierarchical merge optimistic vs members: %v", i, res.OptimisticMismatches)
		}
		res, err = CheckEquivalence(cx, g, []*sdc.Mode{flat[i]}, hmerged[i], Options{})
		if err != nil {
			t.Fatalf("clique %d vs flat: %v", i, err)
		}
		if !res.Equivalent() {
			t.Errorf("clique %d: hierarchical merge optimistic vs flat merge: %v", i, res.OptimisticMismatches)
		}
		if hreps[i].HierBlocksMerged > 0 && hreps[i].HarvestedExceptions > 0 {
			sawHarvestable = true
		}
	}
	if !sawHarvestable {
		t.Error("no clique harvested any block refinement — hierarchical path not exercised")
	}
}

// TestHierarchicalMergeDeterminism holds the hierarchical path to the
// same byte-identical-output contract as the flat engine.
func TestHierarchicalMergeDeterminism(t *testing.T) {
	g, hier, modes := defaultHierFixture(t)
	cx := context.Background()
	render := func(par int) string {
		merged, _, _, err := MergeAll(cx, g, modes, Options{Hierarchical: hier, Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		out := ""
		for _, m := range merged {
			out += sdc.Write(m)
		}
		return out
	}
	seq := render(1)
	if par := render(4); par != seq {
		t.Error("hierarchical merge output differs between Parallelism 1 and 4")
	}
}

// TestHierarchicalFaultDetected proves the harvest guards are
// load-bearing: with ETMKeepSubsetExceptions injected, a relaxation
// present in only one member leaks through the harvest and the
// equivalence check must flag the stitched mode as optimistic.
func TestHierarchicalFaultDetected(t *testing.T) {
	g, hier, modes := defaultHierFixture(t)
	cx := context.Background()

	// Give one mode a subset-only false path onto a block-interior
	// endpoint; every other mode still times it.
	target := hier.Blocks[0].Name + "/s1_r0/D"
	if _, _, err := g.Design.FindPin(target); err != nil {
		t.Fatalf("fixture pin: %v", err)
	}
	modes[0].Exceptions = append(modes[0].Exceptions, &sdc.Exception{
		Kind: sdc.FalsePath,
		From: &sdc.PointList{},
		To:   &sdc.PointList{Pins: []sdc.ObjRef{{Kind: sdc.PinObj, Name: target}}},
	})

	opt := Options{Hierarchical: hier}
	opt.Inject.ETMKeepSubsetExceptions = true
	merged, _, mb, err := MergeAll(cx, g, modes, opt)
	if err != nil {
		t.Fatalf("faulty merge: %v", err)
	}
	detected := false
	for i, clique := range mb.Cliques() {
		if len(clique) < 2 {
			continue
		}
		members := make([]*sdc.Mode, len(clique))
		for j, m := range clique {
			members[j] = modes[m]
		}
		res, err := CheckEquivalence(cx, g, members, merged[i], Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent() {
			detected = true
		}
	}
	if !detected {
		t.Error("injected ETMKeepSubsetExceptions fault was not detected by the equivalence check")
	}
}
