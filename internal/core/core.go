// Package core implements the paper's contribution: automated timing-graph
// based mode merging. N mergeable SDC modes are reduced to one superset
// mode in two phases — preliminary mode merging (§3.1: clock union,
// tolerance-based clock-constraint merge, external-delay union,
// case/disable intersection, inferred clock exclusivity, clock refinement,
// exception intersection and uniquification) and refinement of the
// preliminary merged mode (§3.2: data-network clock blocking plus the
// 3-pass timing-relationship comparison that inserts corrective false
// paths). Mergeability analysis groups arbitrary mode sets into merge
// cliques (Figure 2), and an equivalence checker validates the result.
package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"modemerge/internal/graph"
	"modemerge/internal/incr"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
	"modemerge/internal/obs"
	"modemerge/internal/sdc"
	"modemerge/internal/sta"
)

// Options tunes the merging flow.
type Options struct {
	// Tolerance is the relative tolerance for merging clock-based and
	// drive/load constraint values across modes (§3.1.2). Values within
	// the tolerance merge to min-of-mins / max-of-maxes; beyond it the
	// modes are non-mergeable. Default 0.05.
	Tolerance float64
	// MergedName names the merged mode; default joins the input names
	// with "+".
	MergedName string
	// MaxRefineIterations bounds the refine→validate loop. Default 4.
	MaxRefineIterations int
	// Parallelism bounds the intra-merge worker pools: per-mode context
	// builds, the sharded whole-design endpoint loops, the per-endpoint
	// pass-2/3 relation queries and the pairwise mergeability analysis.
	// 0 means GOMAXPROCS; 1 forces the fully sequential path. Workers
	// emit per-shard results that are reduced in a fixed order, so the
	// merged SDC, provenance and explain output are byte-identical for
	// every setting (see DESIGN.md).
	Parallelism int
	// STA carries analysis options (worker count etc.).
	STA sta.Options
	// StageHook, when set, receives the wall time of each completed flow
	// stage ("mergeability", "prelim", "clock_refine", "data_refine").
	// Hooks must be cheap and safe for serial calls from the merging
	// goroutine.
	StageHook func(stage string, d time.Duration)
	// Trace, when set, is the parent span under which the flow records
	// one child span per stage (and sub-stage) with wall time, heap
	// allocation delta and domain counters. Nil disables tracing at
	// near-zero cost.
	Trace *obs.Span
	// Inject deliberately breaks parts of the flow. Production callers
	// leave it zero; the differential fuzzing harness (internal/difftest)
	// uses it to prove its oracles catch real merge bugs.
	Inject FaultInjection
	// Cache, when set, is the incremental re-merge engine's sub-merge
	// cache: per-mode analysis contexts, pairwise mergeability verdicts
	// and whole-clique merge artifacts are looked up by content address
	// before being computed and stored back after. Results are proven
	// byte-identical to cold merges by the difftest incremental oracle.
	// Nil disables incremental reuse.
	Cache *incr.Cache
	// Slow disables individual data-refinement optimizations, forcing the
	// pre-optimization slow paths. Results are byte-identical with any
	// combination (enforced by refine_equiv_test.go), so these knobs are
	// excluded from the incremental cache key like Parallelism; they
	// exist for equivalence tests and for bisecting perf regressions.
	Slow SlowPaths
	// Corners, when non-empty, turns the merge into an MCMM scenario-
	// matrix merge: every mode is analyzed once per corner (the corner's
	// SDC overlay appended to the mode text, its derates applied to the
	// delay calculation), and mergeability, clock refinement and data
	// refinement require justification across ALL #modes × #corners
	// scenarios — the across-corner worst case. The merged mode itself
	// stays corner-less: deploying it in corner c means appending that
	// corner's overlay, exactly as for the member modes. Empty means the
	// historical corner-less merge, bit-for-bit. Incompatible with
	// Hierarchical.
	Corners []library.Corner
	// Hierarchical, when set, routes every multi-mode clique through the
	// extracted-timing-model merge (internal/etm): flat preliminary merge
	// and clock refinement, then per-block data refinement on the block
	// masters with projected member modes, plus an abstract-top merge,
	// instead of whole-design data refinement. The hierarchical design's
	// flattened form must be the design the graph was built from. Results
	// are relation-equivalent to (never more optimistic than) the flat
	// merge; see the difftest hierarchical oracle.
	Hierarchical *netlist.HierDesign
}

// SlowPaths selects data-refinement optimizations to disable (debug
// knobs; see Options.Slow).
type SlowPaths struct {
	// NoRelationCache disables the per-context relation memo and shared
	// start-tracked propagation (sta.Options.DisableRelationMemo): every
	// pass-2/3 query re-propagates its endpoint cone.
	NoRelationCache bool
	// NoEndpointPrune disables pass-1/2 fingerprint pruning: every
	// endpoint is gathered and compared even when all contexts provably
	// agree.
	NoEndpointPrune bool
	// NoPairPrune disables the pass-3 reconvergence prune: every
	// ambiguous (start, end) pair gets the full through-point scan.
	NoPairPrune bool
	// NoCacheTransfer drops all memoized merged-context relation results
	// on every refinement rebuild instead of invalidating only endpoints
	// reachable from the newly added exceptions.
	NoCacheTransfer bool
}

// FaultInjection selects deliberate merge bugs for differential testing.
type FaultInjection struct {
	// KeepSubsetExceptions skips §3.1.9/§3.1.10 entirely: an exception
	// present in only a subset of the modes joins the merged mode
	// unconditionally (the naive textual-union bug). The merged mode then
	// relaxes paths that other modes time — an optimistic, sign-off unsafe
	// merge that CheckEquivalence must flag.
	KeepSubsetExceptions bool
	// SkipClockRefinement skips §3.1.8 (clock stop insertion).
	SkipClockRefinement bool
	// SkipDataRefinement skips §3.2 (launch blocking + 3-pass fixes).
	SkipDataRefinement bool
	// ETMKeepSubsetExceptions breaks the hierarchical merge only: block
	// merges run with KeepSubsetExceptions and the harvest keeps every
	// block-merged exception instead of just the refinement tail, so
	// subset-only member relaxations leak into the stitched mode — an
	// optimistic merge the hierarchical oracle must flag.
	ETMKeepSubsetExceptions bool
	// PruneSkipDifferingEndpoints breaks the pass-1/2 fingerprint prune:
	// an endpoint is skipped whenever the member modes agree, without
	// checking that the merged mode agrees too. Endpoints where the
	// merged mode relaxes what every member constrains then keep their
	// optimism uncorrected — caught by the equivalence oracle, which
	// deliberately never prunes.
	PruneSkipDifferingEndpoints bool
	// MergeBestCornerOnly breaks the scenario-matrix merge: only the
	// first corner's scenarios are built and refined, so a path that is
	// false in corner 0 but timed in corner 1 gets a corrective false
	// path the corner-1 deployment must not have — optimism in every
	// corner but the first, caught by the corner-conformity oracle. A
	// no-op on corner-less (or single-corner) merges, like the ETM fault
	// on flat merges.
	MergeBestCornerOnly bool
}

// Any reports whether any fault is enabled.
func (f FaultInjection) Any() bool {
	return f.KeepSubsetExceptions || f.SkipClockRefinement || f.SkipDataRefinement ||
		f.ETMKeepSubsetExceptions || f.PruneSkipDifferingEndpoints || f.MergeBestCornerOnly
}

// stage times one flow stage and reports it to the hook.
func (o Options) stage(name string) func() {
	if o.StageHook == nil {
		return func() {}
	}
	start := time.Now()
	return func() { o.StageHook(name, time.Since(start)) }
}

// parallelism resolves Options.Parallelism (0 → GOMAXPROCS).
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) withDefaults() Options {
	if o.Tolerance <= 0 {
		o.Tolerance = 0.05
	}
	if o.MaxRefineIterations <= 0 {
		o.MaxRefineIterations = 4
	}
	return o
}

// Report summarizes one merge run.
type Report struct {
	// Preliminary merging counters.
	MergedClocks         int
	RenamedClocks        int
	DroppedCases         int
	TranslatedCases      int // always-cased conflicting objects → disables
	DroppedExceptions    int
	UniquifiedExceptions int
	ExclusivePairs       int
	// Refinement counters.
	ClockStops      int // set_clock_sense -stop_propagation added
	LaunchBlocks    int // data-refinement false paths added
	Pass1Mismatch   int
	Pass1Ambiguous  int
	Pass2Mismatch   int
	Pass2Ambiguous  int
	Pass3Mismatch   int
	AddedFalsePaths int
	// Hierarchical (ETM) merge counters.
	HierBlocksMerged    int // block instances whose refinement was harvested
	HierBlocksSkipped   int // blocks skipped (combinationally re-entrant)
	HarvestedExceptions int // sub-merge exceptions stitched into the merged mode
	// Validation.
	Iterations        int
	PessimisticGroups int // merged tighter than needed (sign-off safe)
	ResidualMismatch  int // should be zero
	// Corners lists the corner names of a scenario-matrix merge in
	// analysis order (empty for corner-less merges); the per-corner
	// provenance records reference these names.
	Corners  []string
	Warnings []string
	// Provenance explains, one record per constraint decision, why the
	// merged mode contains (or lacks) each inserted, dropped, renamed or
	// uniquified constraint — the raw material of the explain report.
	Provenance []obs.Provenance
}

func (r *Report) warnf(format string, args ...any) {
	r.Warnings = append(r.Warnings, fmt.Sprintf(format, args...))
}

func (r *Report) prov(p obs.Provenance) {
	r.Provenance = append(r.Provenance, p)
}

// Explain packages the report's provenance as an explain report for the
// named merged mode.
func (r *Report) Explain(merged string) *obs.Explain {
	return &obs.Explain{Merged: merged, Records: r.Provenance}
}

// clockMap tracks the mapping between individual-mode clocks and merged
// clocks.
type clockMap struct {
	// toMerged[m][localName] = merged name.
	toMerged []map[string]string
	// members[mergedName][m] = local name ("" if the clock does not exist
	// in mode m).
	members map[string][]string
	// order of merged clock names.
	order []string
}

func newClockMap(nModes int) *clockMap {
	return &clockMap{
		toMerged: make([]map[string]string, nModes),
		members:  map[string][]string{},
	}
}

// modeIndex reduces a flattened scenario index to its base-mode index.
// The map is built over the n base modes, but corner-aware merges index
// it by scenario (mode m of corner c at c·n+m); corner overlays never
// add or rename clocks, so scenario c·n+m shares mode m's clock names.
func (cm *clockMap) modeIndex(m int) int { return m % len(cm.toMerged) }

// mapName maps a local clock name of mode m to the merged namespace; names
// with no mapping (e.g. already-merged names) pass through.
func (cm *clockMap) mapName(m int, local string) string {
	if mapped, ok := cm.toMerged[cm.modeIndex(m)][local]; ok {
		return mapped
	}
	return local
}

// existsIn reports whether the merged clock exists in mode m.
func (cm *clockMap) existsIn(merged string, m int) bool {
	mem, ok := cm.members[merged]
	return ok && mem[cm.modeIndex(m)] != ""
}

// localName returns mode m's local name for a merged clock ("" if absent).
func (cm *clockMap) localName(merged string, m int) string {
	if mem, ok := cm.members[merged]; ok {
		return mem[cm.modeIndex(m)]
	}
	return ""
}

// Merger drives one merge of a group of modes on one design.
type Merger struct {
	design *netlist.Design
	g      *graph.Graph
	modes  []*sdc.Mode
	opt    Options

	// corners is the effective corner set (opt.Corners after fault
	// gating); empty for corner-less merges. With C corners, ctxs holds
	// the #modes × C scenario contexts flattened mode-major: scenario
	// c·n+m is mode m analyzed in corner c. The refinement loops iterate
	// ctxs, so "justified in some mode" / "false in every mode" become
	// per-scenario — the across-corner worst case — without any further
	// changes. Corner-less merges keep ctxs ≡ one context per mode.
	corners []library.Corner

	merged *sdc.Mode
	cmap   *clockMap
	ctxs   []*sta.Context // per scenario (mode × corner); per mode when corner-less
	mctx   *sta.Context   // merged (rebuilt after constraint additions)

	// span is the parent for this merge's stage spans (opt.Trace; nil
	// disables tracing).
	span *obs.Span

	// memo carries the data-refinement fingerprint tables and pending
	// exception tracking across refinement iterations (see refine.go).
	memo refineMemo

	Report *Report
}

// NewMerger prepares a merge of the given modes. The graph is built once
// and shared. Cancelling cx aborts between per-mode context builds.
func NewMerger(cx context.Context, design *netlist.Design, modes []*sdc.Mode, opt Options) (*Merger, error) {
	if len(modes) == 0 {
		return nil, fmt.Errorf("core: no modes to merge")
	}
	g, err := graph.Build(design)
	if err != nil {
		return nil, err
	}
	return newMergerWithGraph(cx, g, modes, opt)
}

func newMergerWithGraph(cx context.Context, g *graph.Graph, modes []*sdc.Mode, opt Options) (*Merger, error) {
	opt = opt.withDefaults()
	corners := opt.Corners
	if len(corners) > 0 {
		if opt.Hierarchical != nil {
			return nil, fmt.Errorf("core: corner-aware merging does not support hierarchical merge")
		}
		if err := library.ValidateCorners(corners); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		// Injected bug: refine the matrix as if only the first corner
		// existed. Paths excluded in corner 0 but timed elsewhere then
		// pick up corrective false paths that are optimistic in every
		// other corner — the corner-conformity oracle's target.
		if opt.Inject.MergeBestCornerOnly && len(corners) > 1 {
			corners = corners[:1]
		}
	}
	name := opt.MergedName
	if name == "" {
		for i, m := range modes {
			if i > 0 {
				name += "+"
			}
			name += m.Name
		}
	}
	mg := &Merger{
		design:  g.Design,
		g:       g,
		modes:   modes,
		opt:     opt,
		corners: corners,
		merged:  &sdc.Mode{Name: name},
		cmap:    newClockMap(len(modes)),
		span:    opt.Trace,
		Report:  &Report{},
	}
	mg.span.SetAttr("merged_mode", name)
	scen, err := mg.scenarioModes()
	if err != nil {
		return nil, err
	}
	// Per-scenario contexts build on the bounded pool: each scenario is
	// an independent analysis, and the results land in index order so the
	// first failing scenario (lowest index) wins deterministically. With
	// an incremental cache, previously built contexts are reused by
	// content address and only the missing ones are built (see
	// incremental.go).
	sp := mg.span.Child("build_contexts")
	sp.Add("modes", int64(len(modes)))
	if len(corners) > 0 {
		sp.Add("corners", int64(len(corners)))
		sp.Add("scenarios", int64(len(scen)))
	}
	mg.ctxs = make([]*sta.Context, len(scen))
	var errs []error
	if opt.Cache != nil {
		errs = mg.cachedContexts(cx, opt.Cache, sp, scen)
	} else {
		errs = make([]error, len(scen))
		forEachParallel(cx, len(scen), opt.parallelism(), func(i int) {
			ctx, err := sta.NewContext(g, scen[i], mg.scenarioStaOptions(i))
			if err != nil {
				errs[i] = fmt.Errorf("mode %s: %w", mg.scenarioName(i), err)
				return
			}
			mg.ctxs[i] = ctx
		})
	}
	sp.Finish()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := cx.Err(); err != nil {
		return nil, err
	}
	mg.recordCornerProvenance()
	return mg, nil
}

// scenarioModes renders the #modes × #corners scenario matrix as a flat
// mode list, corner-major: scenario c·n+m is mode m under corner c's SDC
// overlay. Corner-less merges return the base modes unchanged — the same
// objects, so the historical path is untouched. Corners with an empty
// overlay reuse the base mode objects too (the corner still differs via
// its derates, applied through sta.Options.Corner).
func (mg *Merger) scenarioModes() ([]*sdc.Mode, error) {
	if len(mg.corners) == 0 {
		return mg.modes, nil
	}
	scen := make([]*sdc.Mode, 0, len(mg.modes)*len(mg.corners))
	for c := range mg.corners {
		crn := &mg.corners[c]
		for _, m := range mg.modes {
			if crn.SDC == "" {
				scen = append(scen, m)
				continue
			}
			eff, err := applyCornerOverlay(mg.design, m, crn)
			if err != nil {
				return nil, err
			}
			scen = append(scen, eff)
		}
	}
	return scen, nil
}

// applyCornerOverlay appends a corner's SDC overlay to a mode and parses
// the result. Overlays refine the environment of existing clocks and
// ports; creating clocks would break the scenario↔mode clock-name
// correspondence the merge relies on, so that is rejected here.
func applyCornerOverlay(d *netlist.Design, m *sdc.Mode, crn *library.Corner) (*sdc.Mode, error) {
	text := sdc.Write(m) + "\n" + crn.SDC + "\n"
	eff, _, err := sdc.Parse(m.Name, text, d)
	if err != nil {
		return nil, fmt.Errorf("corner %s overlay on mode %s: %w", crn.Name, m.Name, err)
	}
	if len(eff.Clocks) != len(m.Clocks) {
		return nil, fmt.Errorf("corner %s overlay on mode %s: overlays must not create clocks", crn.Name, m.Name)
	}
	return eff, nil
}

// scenarioCorner returns the corner a flattened scenario index belongs
// to; nil on the corner-less path.
func (mg *Merger) scenarioCorner(s int) *library.Corner {
	if len(mg.corners) == 0 {
		return nil
	}
	return &mg.corners[s/len(mg.modes)]
}

// scenarioName names a scenario for errors and provenance: the mode name
// alone on the corner-less path, "mode@corner" otherwise.
func (mg *Merger) scenarioName(s int) string {
	name := mg.modes[s%len(mg.modes)].Name
	if c := mg.scenarioCorner(s); c != nil {
		name += "@" + c.Name
	}
	return name
}

// scenarioStaOptions is staOptions with the scenario's corner selected.
func (mg *Merger) scenarioStaOptions(s int) sta.Options {
	o := mg.staOptions()
	o.Corner = mg.scenarioCorner(s)
	return o
}

// recordCornerProvenance emits one provenance record per corner of a
// scenario-matrix merge, naming the scenarios that corner contributed to
// the refinement evidence — the per-corner half of the explain report.
func (mg *Merger) recordCornerProvenance() {
	if len(mg.corners) == 0 {
		return
	}
	n := len(mg.modes)
	for c := range mg.corners {
		crn := &mg.corners[c]
		scens := make([]string, n)
		for m := 0; m < n; m++ {
			scens[m] = mg.scenarioName(c*n + m)
		}
		mg.Report.Corners = append(mg.Report.Corners, crn.Name)
		mg.Report.prov(obs.Provenance{
			Stage:      "corners/scenario_matrix",
			Rule:       "MCMM scenario matrix",
			Action:     obs.ActionKeep,
			Constraint: fmt.Sprintf("corner %s", crn.Name),
			Modes:      scens,
			Detail: fmt.Sprintf(
				"delay×%g early×%g late×%g margin×%g, overlay %d bytes; refinement requires justification across every corner's scenarios",
				crn.DelayFactor(), crn.EarlyFactor(), crn.LateFactor(),
				crn.MarginFactor(), len(crn.SDC)),
		})
	}
}

// staOptions wires the merge's trace parent into the analysis contexts so
// the heavy sta loops report their own spans, and propagates the merge
// parallelism into the sta worker pools unless the caller pinned its own
// worker count.
func (mg *Merger) staOptions() sta.Options {
	o := mg.opt.STA
	if o.Workers <= 0 {
		o.Workers = mg.opt.parallelism()
	}
	o.Span = mg.span
	if mg.opt.Slow.NoRelationCache {
		o.DisableRelationMemo = true
	}
	return o
}

// Merge runs the full flow and returns the merged mode. Cancelling cx
// aborts promptly between stages and inside the parallel refinement
// loops, returning the context error.
func (mg *Merger) Merge(cx context.Context) (*sdc.Mode, error) {
	sp := mg.span.Child("prelim")
	done := mg.opt.stage("prelim")
	if err := mg.preliminary(sp); err != nil {
		sp.Finish()
		return nil, err
	}
	if err := mg.rebuildMerged(); err != nil {
		sp.Finish()
		return nil, err
	}
	sp.Add("clocks_merged", int64(mg.Report.MergedClocks))
	sp.Add("clocks_renamed", int64(mg.Report.RenamedClocks))
	sp.Add("cases_dropped", int64(mg.Report.DroppedCases))
	sp.Add("cases_translated", int64(mg.Report.TranslatedCases))
	sp.Add("exceptions_dropped", int64(mg.Report.DroppedExceptions))
	sp.Add("exceptions_uniquified", int64(mg.Report.UniquifiedExceptions))
	sp.Add("exclusive_pairs", int64(mg.Report.ExclusivePairs))
	sp.Finish()
	done()
	if err := cx.Err(); err != nil {
		return nil, err
	}
	if !mg.opt.Inject.SkipClockRefinement {
		sp = mg.span.Child("clock_refine")
		done = mg.opt.stage("clock_refine")
		if err := mg.clockRefinement(); err != nil {
			sp.Finish()
			return nil, err
		}
		sp.Add("sense_stops", int64(mg.Report.ClockStops))
		sp.Finish()
		done()
	}
	if err := cx.Err(); err != nil {
		return nil, err
	}
	if !mg.opt.Inject.SkipDataRefinement {
		sp = mg.span.Child("data_refine")
		done = mg.opt.stage("data_refine")
		if err := mg.dataRefinement(cx, sp); err != nil {
			sp.Finish()
			return nil, err
		}
		sp.Add("launch_blocks", int64(mg.Report.LaunchBlocks))
		sp.Add("false_paths_added", int64(mg.Report.AddedFalsePaths))
		sp.Add("iterations", int64(mg.Report.Iterations))
		sp.Finish()
		done()
	}
	return mg.merged, nil
}

// Merged returns the merged mode built so far.
func (mg *Merger) Merged() *sdc.Mode { return mg.merged }

// rebuildMerged re-resolves the merged mode against the graph after
// constraints were added. With an incremental cache, the merged context
// is looked up (and stored) by content address like the member contexts,
// so warm re-merges and equivalence checks of a previously seen merged
// mode skip the context rebuild entirely.
func (mg *Merger) rebuildMerged() error {
	sp := mg.span.Child("rebuild_merged")
	defer sp.Finish()
	if c := mg.opt.Cache; c != nil {
		staOpt := mg.staOptions()
		staOpt.Span = nil // cached contexts must not reference this merge's tracer
		text := sdc.Write(mg.merged)
		key := contextCacheKey(mg.g, text, staOpt, staOpt.Workers)
		if v, ok := c.GetObject(incr.GranMergedCtx, key); ok {
			mg.mctx = v.(*sta.Context)
			sp.Add("ctx_cache_hits", 1)
			return nil
		}
		// mg.merged keeps mutating as refinement appends exceptions, so a
		// cached context is built from a parsed snapshot of the current
		// text (the same Write→Parse round trip the clique artifact
		// relies on) instead of aliasing the live mode.
		if snap, _, err := sdc.Parse(mg.merged.Name, text, mg.design); err == nil {
			ctx, err := sta.NewContext(mg.g, snap, staOpt)
			if err != nil {
				return fmt.Errorf("merged mode %s: %w", mg.merged.Name, err)
			}
			c.PutObject(incr.GranMergedCtx, key, ctx)
			sp.Add("ctx_cache_misses", 1)
			mg.mctx = ctx
			return nil
		}
	}
	ctx, err := sta.NewContext(mg.g, mg.merged, mg.staOptions())
	if err != nil {
		return fmt.Errorf("merged mode %s: %w", mg.merged.Name, err)
	}
	mg.mctx = ctx
	return nil
}

// rebuildMergedExcOnly is rebuildMerged for callers that changed nothing
// but timing exceptions (the data-refinement loop: launch blocking and
// per-iteration corrective false paths). It derives the new context from
// the previous one, sharing every exception-independent analysis result
// and recompiling only the exception set. The incremental-cache path and
// the NoCacheTransfer equivalence knob fall back to the full rebuild —
// the former because cached contexts must not alias the live merged mode,
// the latter so the slow path exercises a from-scratch build.
func (mg *Merger) rebuildMergedExcOnly() error {
	if mg.mctx == nil || mg.opt.Cache != nil || mg.opt.Slow.NoCacheTransfer {
		return mg.rebuildMerged()
	}
	sp := mg.span.Child("rebuild_merged")
	defer sp.Finish()
	sp.Add("exc_only_derives", 1)
	mg.mctx = sta.DeriveExceptionsOnly(mg.mctx, mg.merged, mg.staOptions())
	return nil
}

// Merge is the package-level convenience: merge one group of modes.
// Cancelling cx aborts the flow promptly with the context error.
func Merge(cx context.Context, design *netlist.Design, modes []*sdc.Mode, opt Options) (*sdc.Mode, *Report, error) {
	mg, err := NewMerger(cx, design, modes, opt)
	if err != nil {
		return nil, nil, err
	}
	merged, err := mg.Merge(cx)
	if err != nil {
		return nil, mg.Report, err
	}
	return merged, mg.Report, nil
}

// MergeWithGraph is Merge for callers that already built the design's
// timing graph, so repeated merges (and the incremental cache, whose
// keys include the graph fingerprint) do not rebuild it per call.
func MergeWithGraph(cx context.Context, g *graph.Graph, modes []*sdc.Mode, opt Options) (*sdc.Mode, *Report, error) {
	mg, err := newMergerWithGraph(cx, g, modes, opt)
	if err != nil {
		return nil, nil, err
	}
	merged, err := mg.Merge(cx)
	if err != nil {
		return nil, mg.Report, err
	}
	return merged, mg.Report, nil
}
