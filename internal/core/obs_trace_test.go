package core

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/obs"
	"modemerge/internal/sdc"
	"modemerge/internal/sta"
)

var updateExplainGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// genFamily generates a synthetic design plus a parsed mode family.
func genFamily(t *testing.T, dspec gen.DesignSpec, fspec gen.FamilySpec) (*graph.Graph, []*sdc.Mode) {
	t.Helper()
	gd, err := gen.Generate(dspec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(gd.Design)
	if err != nil {
		t.Fatal(err)
	}
	var modes []*sdc.Mode
	for _, m := range gd.Modes(fspec) {
		mode, _, err := sdc.Parse(m.Name, m.Text, g.Design)
		if err != nil {
			t.Fatalf("mode %s: %v", m.Name, err)
		}
		modes = append(modes, mode)
	}
	return g, modes
}

func walkSpans(vs []*obs.SpanView, fn func(*obs.SpanView)) {
	for _, v := range vs {
		fn(v)
		walkSpans(v.Children, fn)
	}
}

// TestTraceWellFormedParallelMergeAll hammers the span API from MergeAll
// over a multi-clique family with a parallel STA worker pool (run under
// -race in CI) and asserts the recorded trace is a single well-formed
// tree covering every merge stage of every clique.
func TestTraceWellFormedParallelMergeAll(t *testing.T) {
	g, modes := genFamily(t,
		gen.DesignSpec{Name: "trace", Seed: 21, Domains: 2, BlocksPerDomain: 2,
			Stages: 2, RegsPerStage: 2, CloudDepth: 1, CrossPaths: 2, IOPairs: 2},
		gen.FamilySpec{Groups: 2, ModesPerGroup: []int{3, 2}, BasePeriod: 2})

	tr := obs.NewTracer()
	root := tr.Start("merge_all")
	opt := Options{Trace: root, STA: sta.Options{Workers: 4}}
	merged, _, mb, err := MergeAll(context.Background(), g, modes, opt)
	if err != nil {
		t.Fatal(err)
	}
	root.Finish()
	if len(merged) != 2 {
		t.Fatalf("merged %d modes, want 2 cliques", len(merged))
	}

	tree := tr.Tree()
	if len(tree) != 1 || tree[0].Name != "merge_all" {
		t.Fatalf("trace roots = %d, want single merge_all root", len(tree))
	}
	if err := obs.CheckWellFormed(tree); err != nil {
		t.Fatalf("trace not well-formed: %v", err)
	}

	counts := map[string]int{}
	walkSpans(tree, func(v *obs.SpanView) {
		name := v.Name
		if strings.HasPrefix(name, "merge:") {
			name = "merge:"
		}
		counts[name]++
	})
	if counts["mergeability"] != 1 {
		t.Errorf("mergeability spans = %d, want 1", counts["mergeability"])
	}
	if counts["merge:"] != len(mb.Cliques()) {
		t.Errorf("merge:* spans = %d, want %d (one per clique)", counts["merge:"], len(mb.Cliques()))
	}
	for _, stage := range []string{"build_contexts", "prelim", "clock_refine", "data_refine"} {
		if counts[stage] != 2 {
			t.Errorf("%s spans = %d, want 2 (one per clique)", stage, counts[stage])
		}
	}
	// The merged mode is rebuilt once per data-refinement iteration, so at
	// least once per clique.
	if counts["rebuild_merged"] < 2 {
		t.Errorf("rebuild_merged spans = %d, want >= 2", counts["rebuild_merged"])
	}

	totals := tr.StageTotals()
	for _, stage := range []string{"prelim", "data_refine"} {
		st, ok := totals[stage]
		if !ok || st.Count != 2 {
			t.Errorf("StageTotals[%s] = %+v, want count 2", stage, st)
		}
	}
}

// stripComment cuts the trailing -comment argument so rendered exceptions
// compare on their timing content.
func stripComment(s string) string {
	if i := strings.Index(s, " -comment "); i >= 0 {
		return s[:i]
	}
	return s
}

// TestProvenanceCoversRefinementInserts merges a multi-domain family and
// asserts the explain report carries an insert record for every
// refinement-inserted constraint of the merged mode: each inferred false
// path and each set_clock_sense stop.
func TestProvenanceCoversRefinementInserts(t *testing.T) {
	g, modes := genFamily(t,
		gen.DesignSpec{Name: "prov", Seed: 7, Domains: 2, BlocksPerDomain: 2,
			Stages: 3, RegsPerStage: 4, CloudDepth: 3, CrossPaths: 2},
		gen.FamilySpec{Groups: 1, ModesPerGroup: []int{3}, BasePeriod: 2})

	merged, reports, _, err := MergeAll(context.Background(), g, modes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 1 {
		t.Fatalf("merged %d modes, want 1", len(merged))
	}
	rep := reports[0]
	if rep.AddedFalsePaths+rep.LaunchBlocks == 0 || rep.ClockStops == 0 {
		t.Fatalf("design exercises no refinement (FPs=%d stops=%d); pick a different spec",
			rep.AddedFalsePaths+rep.LaunchBlocks, rep.ClockStops)
	}

	inserted := map[string]bool{}
	for _, r := range rep.Provenance {
		if r.Action == obs.ActionInsert {
			inserted[stripComment(r.Constraint)] = true
		}
	}
	for _, e := range merged[0].Exceptions {
		if !strings.Contains(e.Comment, "inferred by") {
			continue
		}
		key := stripComment(sdc.WriteException(e))
		if !inserted[key] {
			t.Errorf("inserted exception has no provenance record: %s", key)
		}
	}

	stops := 0
	for _, r := range rep.Provenance {
		if r.Stage == "clock_refine" && r.Action == obs.ActionInsert {
			stops++
		}
	}
	if stops != rep.ClockStops {
		t.Errorf("clock_refine insert records = %d, want %d (one per stop)", stops, rep.ClockStops)
	}
}

// TestExplainTextGolden locks the text explain report for one fixed gen
// seed. The report must be deterministic: record order may not depend on
// map iteration or worker scheduling. Regenerate deliberately with
//
//	go test ./internal/core -run ExplainTextGolden -update
func TestExplainTextGolden(t *testing.T) {
	run := func() string {
		g, modes := genFamily(t,
			gen.DesignSpec{Name: "exg", Seed: 4242, Domains: 2, BlocksPerDomain: 1,
				Stages: 2, RegsPerStage: 2, CloudDepth: 1, CrossPaths: 1},
			gen.FamilySpec{Groups: 1, ModesPerGroup: []int{3}, BasePeriod: 2})
		merged, reports, _, err := MergeAll(context.Background(), g, modes, Options{STA: sta.Options{Workers: 2}})
		if err != nil {
			t.Fatal(err)
		}
		if len(merged) != 1 {
			t.Fatalf("merged %d modes, want 1", len(merged))
		}
		return reports[0].Explain(merged[0].Name).Text()
	}

	got := run()
	if again := run(); again != got {
		t.Fatal("explain text is not deterministic across runs")
	}

	path := filepath.Join("testdata", "explain_golden.txt")
	if *updateExplainGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("explain text differs from %s (run with -update after a deliberate change)\ngot:\n%s", path, got)
	}
}
