package core

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/obs"
	"modemerge/internal/sdc"
)

// determinismFixtures are three fixed generated designs + mode families.
// The seeds are load-bearing: changing them changes the pinned scenarios.
func determinismFixtures(t *testing.T) []struct {
	name  string
	g     *graph.Graph
	modes []*sdc.Mode
} {
	t.Helper()
	specs := []gen.DesignSpec{
		{Name: "det_a", Seed: 101, Domains: 1, BlocksPerDomain: 2,
			Stages: 2, RegsPerStage: 2, CloudDepth: 1, CrossPaths: 1, IOPairs: 1},
		{Name: "det_b", Seed: 202, Domains: 2, BlocksPerDomain: 1,
			Stages: 2, RegsPerStage: 2, CloudDepth: 2, CrossPaths: 2, IOPairs: 1},
		{Name: "det_c", Seed: 303, Domains: 2, BlocksPerDomain: 2,
			Stages: 3, RegsPerStage: 2, CloudDepth: 1, CrossPaths: 2},
	}
	family := gen.FamilySpec{Groups: 2, ModesPerGroup: []int{2, 2}, BasePeriod: 2}
	var out []struct {
		name  string
		g     *graph.Graph
		modes []*sdc.Mode
	}
	for _, spec := range specs {
		gd, err := gen.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.Build(gd.Design)
		if err != nil {
			t.Fatal(err)
		}
		var modes []*sdc.Mode
		for _, m := range gd.Modes(family) {
			mode, _, err := sdc.Parse(m.Name, m.Text, g.Design)
			if err != nil {
				t.Fatalf("%s mode %s: %v", spec.Name, m.Name, err)
			}
			modes = append(modes, mode)
		}
		out = append(out, struct {
			name  string
			g     *graph.Graph
			modes []*sdc.Mode
		}{spec.Name, g, modes})
	}
	return out
}

// mergeAllFingerprint folds everything the determinism guarantee covers —
// merged SDC text, explain-report JSON (which embeds the provenance
// records) and the mergeability conflict list — into one comparable
// string.
func mergeAllFingerprint(t *testing.T, g *graph.Graph, modes []*sdc.Mode, parallelism int) string {
	t.Helper()
	merged, reports, mb, err := MergeAll(context.Background(), g, modes, Options{Parallelism: parallelism})
	if err != nil {
		t.Fatalf("MergeAll(parallelism=%d): %v", parallelism, err)
	}
	var b strings.Builder
	for i := range merged {
		b.WriteString("== " + merged[i].Name + "\n")
		b.WriteString(sdc.Write(merged[i]))
		ej, err := json.Marshal(reports[i].Explain(merged[i].Name))
		if err != nil {
			t.Fatal(err)
		}
		b.Write(ej)
		b.WriteByte('\n')
	}
	for _, c := range mb.Conflicts {
		fmt.Fprintf(&b, "conflict %s|%s|%s\n", c.A, c.B, c.Reason)
	}
	return b.String()
}

// TestMergeAllDeterminismAcrossParallelism pins the parallel engine's
// headline guarantee: over three fixed generated designs, MergeAll
// produces byte-identical merged SDC, provenance/explain JSON and
// conflict reasons for Parallelism ∈ {1, 2, 8} and across repeated runs.
// CI additionally runs this under -race with a -cpu 1,4 matrix.
func TestMergeAllDeterminismAcrossParallelism(t *testing.T) {
	for _, fx := range determinismFixtures(t) {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			t.Parallel()
			baseline := mergeAllFingerprint(t, fx.g, fx.modes, 1)
			if baseline == "" {
				t.Fatal("empty baseline fingerprint")
			}
			for _, p := range []int{1, 2, 8} {
				for rep := 0; rep < 2; rep++ {
					got := mergeAllFingerprint(t, fx.g, fx.modes, p)
					if got != baseline {
						t.Fatalf("parallelism=%d rep=%d output differs from sequential baseline:\n%s",
							p, rep, firstLineDiff(baseline, got))
					}
				}
			}
		})
	}
}

// TestMergeDeterminismSingleClique covers the Merger.Merge entry point
// directly (one clique, no mergeability stage), with tracing enabled so
// the per-worker shard spans run under the race detector.
func TestMergeDeterminismSingleClique(t *testing.T) {
	fx := determinismFixtures(t)[0]
	group := fx.modes[:2]
	fingerprint := func(p int) string {
		tr := obs.NewTracer()
		root := tr.Start("merge")
		defer root.Finish()
		merged, rep, err := Merge(context.Background(), fx.g.Design, group, Options{Parallelism: p, Trace: root})
		if err != nil {
			t.Fatalf("Merge(parallelism=%d): %v", p, err)
		}
		ej, err := json.Marshal(rep.Explain(merged.Name))
		if err != nil {
			t.Fatal(err)
		}
		return merged.Name + "\n" + sdc.Write(merged) + string(ej)
	}
	baseline := fingerprint(1)
	for _, p := range []int{2, 8} {
		if got := fingerprint(p); got != baseline {
			t.Fatalf("parallelism=%d Merge output differs:\n%s", p, firstLineDiff(baseline, got))
		}
	}
}

// firstLineDiff locates the first differing line of two multi-line
// strings for a readable failure message.
func firstLineDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\n  baseline: %s\n  got:      %s", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("line count differs: %d vs %d", len(la), len(lb))
}
