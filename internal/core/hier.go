package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"modemerge/internal/etm"
	"modemerge/internal/graph"
	"modemerge/internal/incr"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
	"modemerge/internal/sdc"
)

// The hierarchical merge path (core.Options.Hierarchical) replaces the
// super-linear flat data refinement with work that scales with block
// masters, not the flat design:
//
//  1. the flat preliminary merge and clock refinement run as usual (both
//     near-linear on the flat graph, and exact),
//  2. data refinement runs per distinct block master on projected member
//     modes (see etm.ProjectMode), once per block instance, and on an
//     abstract top where block interiors collapse to their extracted
//     models (see etm.BuildAbstract),
//  3. the refinement exceptions those small merges insert are harvested
//     into the flat merged mode, with every guard erring on the side of
//     dropping (pessimistic-safe, never optimistic).
//
// Flat launch blocking and flat 3-pass comparison are skipped entirely;
// everything they would have inserted is a relaxation, so skipping them
// only leaves the stitched mode tighter. The difftest hierarchical
// oracle holds the result to relation-equivalence against the flat
// members (never optimistic).

// mergeHierClique merges one multi-mode clique hierarchically.
func mergeHierClique(cx context.Context, g *graph.Graph, h *netlist.HierDesign, group []*sdc.Mode, opt Options) (*sdc.Mode, *Report, error) {
	mg, err := newMergerWithGraph(cx, g, group, opt)
	if err != nil {
		return nil, nil, err
	}

	// Flat §3.1 preliminary merge + §3.1.8 clock refinement.
	sp := mg.span.Child("prelim")
	done := mg.opt.stage("prelim")
	if err := mg.preliminary(sp); err != nil {
		sp.Finish()
		return nil, nil, err
	}
	if err := mg.rebuildMerged(); err != nil {
		sp.Finish()
		return nil, nil, err
	}
	sp.Finish()
	done()
	if err := cx.Err(); err != nil {
		return nil, nil, err
	}
	if !mg.opt.Inject.SkipClockRefinement {
		sp = mg.span.Child("clock_refine")
		done = mg.opt.stage("clock_refine")
		if err := mg.clockRefinement(); err != nil {
			sp.Finish()
			return nil, nil, err
		}
		sp.Finish()
		done()
	}
	if mg.opt.Inject.SkipDataRefinement {
		return mg.merged, mg.Report, nil
	}

	// Extract one model per distinct master, content-addressed when a
	// cache is wired.
	sp = mg.span.Child("etm_extract")
	done = mg.opt.stage("etm_extract")
	masters := h.Masters()
	models := make(map[string]*etm.Model, len(masters))
	masterGraphs := make(map[string]*graph.Graph, len(masters))
	for _, master := range masters {
		mgr, err := graph.Build(master)
		if err != nil {
			sp.Finish()
			return nil, nil, fmt.Errorf("hier: master %s: %w", master.Name, err)
		}
		model, err := extractModel(opt.Cache, mgr)
		if err != nil {
			sp.Finish()
			return nil, nil, err
		}
		masterGraphs[master.Name] = mgr
		models[master.Name] = model
	}
	sp.Add("masters", int64(len(masters)))
	sp.Finish()
	done()

	// Launch-clock reach per member (shared by every block projection).
	reach := make([]*etm.Reach, len(mg.ctxs))
	for i, ctx := range mg.ctxs {
		reach[i] = etm.ComputeReach(ctx)
	}

	// Blocks whose outputs feed combinationally back into their own
	// inputs cannot be harvested: an interior-anchored false path would
	// also kill the re-entrant flat path the block merge never saw.
	reentrant := selfReentrant(h, models)

	sp = mg.span.Child("etm_block_refine")
	done = mg.opt.stage("etm_block_refine")
	var harvest []*sdc.Exception
	for _, blk := range h.Blocks {
		if err := cx.Err(); err != nil {
			sp.Finish()
			return nil, nil, err
		}
		if reentrant[blk.Name] {
			mg.Report.HierBlocksSkipped++
			mg.Report.warnf("hier: block %s is combinationally re-entrant; skipping its refinement harvest", blk.Name)
			continue
		}
		model := models[blk.Master.Name]
		tail, bcm, err := blockRefine(cx, mg, masterGraphs[blk.Master.Name], model, blk, reach)
		if err != nil {
			sp.Finish()
			return nil, nil, fmt.Errorf("hier: block %s: %w", blk.Name, err)
		}
		mg.Report.HierBlocksMerged++
		prefix := blk.Name + "/"
		for _, e := range tail {
			if pe, ok := prefixException(e, prefix); ok && clocksAligned(mg, bcm, pe) {
				harvest = append(harvest, pe)
			}
		}
	}
	sp.Add("harvested", int64(len(harvest)))
	sp.Finish()
	done()

	// Abstract-top refinement for cross-block paths.
	sp = mg.span.Child("etm_abstract_refine")
	done = mg.opt.stage("etm_abstract_refine")
	atail, acm, err := abstractRefine(cx, mg, h, models, group)
	if err != nil {
		sp.Finish()
		return nil, nil, err
	}
	for _, e := range atail {
		if resolvesInFlat(g.Design, e) && clocksAligned(mg, acm, e) {
			harvest = append(harvest, e.Clone())
		}
	}
	sp.Finish()
	done()

	// Stitch: append harvested exceptions not already present, then
	// rebuild so every reference resolves against the flat design.
	existing := map[string]bool{}
	for _, e := range mg.merged.Exceptions {
		existing[e.Key()] = true
	}
	for _, e := range harvest {
		k := e.Key()
		if existing[k] {
			continue
		}
		existing[k] = true
		e.Comment = "harvested by hierarchical refinement"
		mg.merged.Exceptions = append(mg.merged.Exceptions, e)
		mg.Report.HarvestedExceptions++
		if e.Kind == sdc.FalsePath {
			mg.Report.AddedFalsePaths++
		}
	}
	if err := mg.rebuildMerged(); err != nil {
		return nil, nil, fmt.Errorf("hier: stitched mode: %w", err)
	}
	return mg.merged, mg.Report, nil
}

// blockRefine runs preliminary merge + data refinement for one block
// instance on its master graph with projected member modes, returning
// the refinement-inserted exception tail (master namespace) and the
// block merge's clock map. With an incremental cache the raw tail
// replays by content address; guards always re-run on the caller side.
func blockRefine(cx context.Context, mg *Merger, masterG *graph.Graph, model *etm.Model, blk *netlist.BlockInst, reach []*etm.Reach) ([]*sdc.Exception, *clockMap, error) {
	prefix := blk.Name + "/"
	projected := make([]*sdc.Mode, len(mg.ctxs))
	texts := make([]string, len(mg.ctxs))
	for i, ctx := range mg.ctxs {
		pm, text, err := etm.ProjectMode(ctx, reach[i], model, prefix, masterG.Design)
		if err != nil {
			return nil, nil, err
		}
		projected[i] = pm
		texts[i] = text
	}

	bopt := mg.opt
	bopt.Cache = nil
	bopt.Trace = mg.span.Child("block:" + blk.Name)
	defer bopt.Trace.Finish()
	bopt.StageHook = nil
	keepAll := mg.opt.Inject.ETMKeepSubsetExceptions
	if keepAll {
		bopt.Inject.KeepSubsetExceptions = true
	}

	var key string
	if mg.opt.Cache != nil {
		parts := append([]string{"etm-merge", masterG.Fingerprint(), bopt.incrOptionsKey()}, texts...)
		key = incr.Hash(parts...)
		if b, ok := mg.opt.Cache.GetBytes(incr.GranETM, key); ok {
			var tail []*sdc.Exception
			if json.Unmarshal(b, &tail) == nil {
				bcm, err := blockClockMap(cx, masterG, projected, bopt)
				if err != nil {
					return nil, nil, err
				}
				return tail, bcm, nil
			}
		}
	}

	bmg, err := newMergerWithGraph(cx, masterG, projected, bopt)
	if err != nil {
		return nil, nil, err
	}
	bsp := bmg.span.Child("prelim")
	if err := bmg.preliminary(bsp); err != nil {
		bsp.Finish()
		return nil, nil, err
	}
	if err := bmg.rebuildMerged(); err != nil {
		bsp.Finish()
		return nil, nil, err
	}
	bsp.Finish()
	snapshot := len(bmg.merged.Exceptions)
	if keepAll {
		snapshot = 0
	}
	// Clock refinement is skipped on purpose: the flat clock refinement
	// already stopped every clock exactly, block interiors included.
	rsp := bmg.span.Child("data_refine")
	err = bmg.dataRefinement(cx, rsp)
	rsp.Finish()
	if err != nil {
		return nil, nil, err
	}
	tail := bmg.merged.Exceptions[snapshot:]
	if mg.opt.Cache != nil {
		if b, err := json.Marshal(tail); err == nil {
			mg.opt.Cache.PutBytes(incr.GranETM, key, b)
		}
	}
	return tail, bmg.cmap, nil
}

// blockClockMap rebuilds just the clock map of a block merge (for the
// alignment guard) when the refinement tail itself was a cache hit.
func blockClockMap(cx context.Context, masterG *graph.Graph, projected []*sdc.Mode, bopt Options) (*clockMap, error) {
	bmg, err := newMergerWithGraph(cx, masterG, projected, bopt)
	if err != nil {
		return nil, err
	}
	sp := bmg.span.Child("prelim")
	defer sp.Finish()
	if err := bmg.preliminary(sp); err != nil {
		return nil, err
	}
	return bmg.cmap, nil
}

// abstractRefine merges the member modes filtered to the abstract top
// and returns the refinement tail. When any member clock fails to
// survive the filtering, the abstract harvest is skipped entirely — a
// missing clock would under-approximate the member's relations, which is
// the unsound direction.
func abstractRefine(cx context.Context, mg *Merger, h *netlist.HierDesign, models map[string]*etm.Model, group []*sdc.Mode) ([]*sdc.Exception, *clockMap, error) {
	absD, err := etm.BuildAbstract(h, models)
	if err != nil {
		mg.Report.warnf("hier: abstract top failed to build; skipping cross-block refinement: %v", err)
		return nil, nil, nil
	}
	filtered := make([]*sdc.Mode, len(group))
	for i, m := range group {
		fm := etm.FilterMode(m, absD)
		if len(fm.Clocks) != len(m.Clocks) {
			mg.Report.warnf("hier: mode %s has block-interior clocks; skipping abstract refinement", m.Name)
			return nil, nil, nil
		}
		filtered[i] = fm
	}
	absG, err := graph.Build(absD)
	if err != nil {
		mg.Report.warnf("hier: abstract graph failed to build; skipping cross-block refinement: %v", err)
		return nil, nil, nil
	}
	aopt := mg.opt
	aopt.Cache = nil
	aopt.Trace = mg.span.Child("abstract_top")
	defer aopt.Trace.Finish()
	aopt.StageHook = nil
	keepAll := mg.opt.Inject.ETMKeepSubsetExceptions
	if keepAll {
		aopt.Inject.KeepSubsetExceptions = true
	}
	amg, err := newMergerWithGraph(cx, absG, filtered, aopt)
	if err != nil {
		return nil, nil, fmt.Errorf("hier: abstract top: %w", err)
	}
	asp := amg.span.Child("prelim")
	if err := amg.preliminary(asp); err != nil {
		asp.Finish()
		return nil, nil, fmt.Errorf("hier: abstract top: %w", err)
	}
	if err := amg.rebuildMerged(); err != nil {
		asp.Finish()
		return nil, nil, fmt.Errorf("hier: abstract top: %w", err)
	}
	asp.Finish()
	snapshot := len(amg.merged.Exceptions)
	if keepAll {
		snapshot = 0
	}
	rsp := amg.span.Child("data_refine")
	err = amg.dataRefinement(cx, rsp)
	rsp.Finish()
	if err != nil {
		return nil, nil, fmt.Errorf("hier: abstract top: %w", err)
	}
	return amg.merged.Exceptions[snapshot:], amg.cmap, nil
}

// extractModel builds (or replays) the interface timing model of one
// master graph.
func extractModel(cache *incr.Cache, masterG *graph.Graph) (*etm.Model, error) {
	var key string
	if cache != nil {
		key = incr.Hash("etm-model", masterG.Fingerprint())
		if b, ok := cache.GetBytes(incr.GranETM, key); ok {
			var m etm.Model
			if m.UnmarshalBinary(b) == nil && m.GraphFingerprint == masterG.Fingerprint() {
				return &m, nil
			}
		}
	}
	m, err := etm.Extract(masterG)
	if err != nil {
		return nil, err
	}
	if cache != nil {
		if b, err := m.MarshalBinary(); err == nil {
			cache.PutBytes(incr.GranETM, key, b)
		}
	}
	return m, nil
}

// prefixException maps a block-merge exception into the flat namespace:
// every pin/cell reference gets the instance prefix; any port reference
// (block boundary — no flat counterpart) drops the whole exception.
func prefixException(e *sdc.Exception, prefix string) (*sdc.Exception, bool) {
	c := e.Clone()
	mapPL := func(pl *sdc.PointList) bool {
		if pl == nil {
			return true
		}
		for i, r := range pl.Pins {
			if r.Kind == sdc.PortObj {
				return false
			}
			pl.Pins[i].Name = prefix + r.Name
		}
		return true
	}
	if !mapPL(c.From) || !mapPL(c.To) {
		return nil, false
	}
	for _, t := range c.Throughs {
		if !mapPL(t) {
			return nil, false
		}
	}
	return c, true
}

// clocksAligned checks that every clock a harvested exception references
// means the same thing in the sub-merge and in the flat merge: the
// merged name must exist flat, and each member's local name must match
// in both clock maps (an inverted-projection clock never aligns). A
// mismatch drops the exception — pessimistic-safe.
func clocksAligned(mg *Merger, sub *clockMap, e *sdc.Exception) bool {
	if sub == nil {
		return false
	}
	check := func(pl *sdc.PointList) bool {
		if pl == nil {
			return true
		}
		for _, name := range pl.Clocks {
			if mg.merged.ClockByName(name) == nil {
				return false
			}
			for m := range mg.ctxs {
				bl := sub.localName(name, m)
				if strings.HasSuffix(bl, etm.InvSuffix) {
					return false
				}
				if bl != mg.cmap.localName(name, m) {
					return false
				}
			}
		}
		return true
	}
	if !check(e.From) || !check(e.To) {
		return false
	}
	for _, t := range e.Throughs {
		if !check(t) {
			return false
		}
	}
	return true
}

// resolvesInFlat reports whether every object reference of an
// abstract-merge exception exists in the flat design (shell-cell pins do
// not, and drop the exception).
func resolvesInFlat(d *netlist.Design, e *sdc.Exception) bool {
	refOK := func(r sdc.ObjRef) bool {
		switch r.Kind {
		case sdc.PortObj:
			return d.PortByName(r.Name) != nil
		case sdc.CellObj:
			return d.InstByName(r.Name) != nil
		default:
			if !strings.Contains(r.Name, "/") {
				return d.PortByName(r.Name) != nil
			}
			_, _, err := d.FindPin(r.Name)
			return err == nil
		}
	}
	plOK := func(pl *sdc.PointList) bool {
		if pl == nil {
			return true
		}
		for _, r := range pl.Pins {
			if !refOK(r) {
				return false
			}
		}
		return true
	}
	if !plOK(e.From) || !plOK(e.To) {
		return false
	}
	for _, t := range e.Throughs {
		if !plOK(t) {
			return false
		}
	}
	return true
}

// selfReentrant finds block instances whose outputs reach their own
// inputs through a register-free top-level path. The net-level closure
// over-approximates: every top cell passes input→output regardless of
// its function, and other blocks contribute their combinational
// interface arcs. Over-approximation only skips more harvests — the
// safe direction.
func selfReentrant(h *netlist.HierDesign, models map[string]*etm.Model) map[string]bool {
	adj := map[string][]string{}
	edge := func(from, to string) { adj[from] = append(adj[from], to) }
	for _, inst := range h.Top.Insts {
		var ins, outs []string
		for i, net := range inst.Conns {
			if net == nil {
				continue
			}
			if inst.Cell.Pins[i].Dir == library.Input {
				ins = append(ins, net.Name)
			} else {
				outs = append(outs, net.Name)
			}
		}
		for _, a := range ins {
			for _, z := range outs {
				edge(a, z)
			}
		}
	}
	for _, blk := range h.Blocks {
		model := models[blk.Master.Name]
		if model == nil {
			continue
		}
		for _, a := range model.Arcs {
			edge(blk.BindOf(a.In), blk.BindOf(a.Out))
		}
	}
	out := map[string]bool{}
	for _, blk := range h.Blocks {
		model := models[blk.Master.Name]
		if model == nil {
			continue
		}
		inNets := map[string]bool{}
		for _, p := range model.Inputs {
			inNets[blk.BindOf(p)] = true
		}
		var frontier []string
		seen := map[string]bool{}
		for _, p := range model.Outputs {
			n := blk.BindOf(p)
			if !seen[n] {
				seen[n] = true
				frontier = append(frontier, n)
			}
		}
		sort.Strings(frontier)
		for len(frontier) > 0 && !out[blk.Name] {
			n := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			if inNets[n] {
				out[blk.Name] = true
				break
			}
			for _, next := range adj[n] {
				if !seen[next] {
					seen[next] = true
					frontier = append(frontier, next)
				}
			}
		}
	}
	return out
}
