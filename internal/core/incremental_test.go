package core

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"modemerge/internal/graph"
	"modemerge/internal/incr"
	"modemerge/internal/sdc"
)

// mergeAllFingerprintCache is mergeAllFingerprint with an explicit cache,
// for warm-vs-cold byte comparisons.
func mergeAllFingerprintCache(t *testing.T, g *graph.Graph, modes []*sdc.Mode, cache *incr.Cache) string {
	t.Helper()
	merged, reports, mb, err := MergeAll(context.Background(), g, modes, Options{Cache: cache})
	if err != nil {
		t.Fatalf("MergeAll(cache=%v): %v", cache != nil, err)
	}
	var b strings.Builder
	for i := range merged {
		b.WriteString("== " + merged[i].Name + "\n")
		b.WriteString(sdc.Write(merged[i]))
		ej, err := json.Marshal(reports[i].Explain(merged[i].Name))
		if err != nil {
			t.Fatal(err)
		}
		b.Write(ej)
		b.WriteByte('\n')
	}
	for _, c := range mb.Conflicts {
		b.WriteString("conflict " + c.A + "|" + c.B + "|" + c.Reason + "\n")
	}
	return b.String()
}

// perturbMode returns a deterministically modified copy of the mode: its
// canonical SDC text plus one extra clock-uncertainty line, re-parsed
// against the design. This models "the user edited one mode file".
func perturbMode(t *testing.T, g *graph.Graph, m *sdc.Mode) *sdc.Mode {
	t.Helper()
	if len(m.Clocks) == 0 {
		t.Fatal("fixture mode has no clocks to perturb")
	}
	text := sdc.Write(m) + "\nset_clock_uncertainty 0.123 [get_clocks " + m.Clocks[0].Name + "]\n"
	mode, _, err := sdc.Parse(m.Name, text, g.Design)
	if err != nil {
		t.Fatalf("perturb %s: %v", m.Name, err)
	}
	return mode
}

// TestIncrementalMatchesCold is the engine's headline guarantee: merging
// with Options.Cache — cold cache, warm replay, and warm after perturbing
// one mode of N — is byte-identical (merged SDC, explain JSON, conflict
// reasons) to merging without any cache.
func TestIncrementalMatchesCold(t *testing.T) {
	for _, fx := range determinismFixtures(t) {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			t.Parallel()
			cold := mergeAllFingerprintCache(t, fx.g, fx.modes, nil)
			cache := incr.New(0)
			if got := mergeAllFingerprintCache(t, fx.g, fx.modes, cache); got != cold {
				t.Fatalf("cold-cache merge differs from cacheless merge:\n%s", firstLineDiff(cold, got))
			}
			// Pure replay: identical inputs, warm cache.
			if got := mergeAllFingerprintCache(t, fx.g, fx.modes, cache); got != cold {
				t.Fatalf("warm replay differs from cacheless merge:\n%s", firstLineDiff(cold, got))
			}
			s := cache.Stats().Snapshot()
			if s.ContextMisses+s.PairMisses+s.CliqueMisses == 0 {
				t.Fatal("cold run recorded no misses — cache not consulted")
			}
			// Perturb one mode; the incremental result must byte-match a
			// cold merge of the perturbed set.
			for _, pi := range []int{0, len(fx.modes) - 1} {
				modes := append([]*sdc.Mode(nil), fx.modes...)
				modes[pi] = perturbMode(t, fx.g, modes[pi])
				coldP := mergeAllFingerprintCache(t, fx.g, modes, nil)
				if got := mergeAllFingerprintCache(t, fx.g, modes, cache); got != coldP {
					t.Fatalf("incremental re-merge after perturbing mode %d differs from cold merge:\n%s",
						pi, firstLineDiff(coldP, got))
				}
			}
		})
	}
}

// perturbModeNeutral modifies a mode without touching anything the
// mock-merge analysis reads (clock values, drive/load), so pair verdicts
// flip to misses but the clique structure is guaranteed unchanged.
func perturbModeNeutral(t *testing.T, g *graph.Graph, m *sdc.Mode) *sdc.Mode {
	t.Helper()
	if len(m.Clocks) == 0 {
		t.Fatal("fixture mode has no clocks to perturb")
	}
	c := m.Clocks[0].Name
	text := sdc.Write(m) + "\nset_false_path -from [get_clocks " + c + "] -to [get_clocks " + c + "]\n"
	mode, _, err := sdc.Parse(m.Name, text, g.Design)
	if err != nil {
		t.Fatalf("perturb %s: %v", m.Name, err)
	}
	return mode
}

// TestIncrementalReuseCounts pins the "editing one mode of N" contract in
// terms of work actually skipped: after a warm-up, a pure replay misses
// nothing, and perturbing one mode re-runs exactly one context build and
// that mode's N−1 mergeability pairs.
func TestIncrementalReuseCounts(t *testing.T) {
	fx := determinismFixtures(t)[1] // det_b: 2 groups × 2 modes
	n := len(fx.modes)
	cache := incr.New(0)
	mergeAllFingerprintCache(t, fx.g, fx.modes, cache)

	before := cache.Stats().Snapshot()
	mergeAllFingerprintCache(t, fx.g, fx.modes, cache)
	after := cache.Stats().Snapshot()
	if after.ContextMisses != before.ContextMisses ||
		after.PairMisses != before.PairMisses ||
		after.CliqueMisses != before.CliqueMisses {
		t.Fatalf("pure replay recorded new misses: before %+v after %+v", before, after)
	}
	if after.CliqueHits <= before.CliqueHits {
		t.Fatal("pure replay did not hit the clique cache")
	}

	// Perturb one mode: exactly one context rebuild and N−1 pair re-runs.
	modes := append([]*sdc.Mode(nil), fx.modes...)
	modes[0] = perturbModeNeutral(t, fx.g, modes[0])
	before = after
	mergeAllFingerprintCache(t, fx.g, modes, cache)
	after = cache.Stats().Snapshot()
	if got := after.PairMisses - before.PairMisses; got != int64(n-1) {
		t.Fatalf("pair misses after one-mode perturbation = %d, want %d", got, n-1)
	}
	if got := after.CliqueMisses - before.CliqueMisses; got < 1 {
		t.Fatal("perturbed clique did not miss")
	}
	// Only cliques containing the perturbed mode re-merge; with 2 groups
	// of 2, one clique must hit.
	if got := after.CliqueHits - before.CliqueHits; got < 1 {
		t.Fatalf("untouched clique did not hit (hits delta %d)", got)
	}
	// Context builds: only the perturbed mode misses; misses happen per
	// clique merge, and the perturbed mode sits in exactly one clique.
	if got := after.ContextMisses - before.ContextMisses; got != 1 {
		t.Fatalf("context misses after one-mode perturbation = %d, want 1", got)
	}
}

// TestIncrementalSingleCliqueMerge covers the Merger entry point with a
// cache: two consecutive newMergerWithGraph+Merge runs over the same
// inputs share contexts via the cache and agree byte-for-byte.
func TestIncrementalSingleCliqueMerge(t *testing.T) {
	fx := determinismFixtures(t)[0]
	group := fx.modes[:2]
	run := func(cache *incr.Cache) string {
		mg, err := newMergerWithGraph(context.Background(), fx.g, group, Options{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		merged, err := mg.Merge(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return sdc.Write(merged)
	}
	cold := run(nil)
	cache := incr.New(0)
	if got := run(cache); got != cold {
		t.Fatalf("cached merge differs:\n%s", firstLineDiff(cold, got))
	}
	if got := run(cache); got != cold {
		t.Fatalf("warm merge differs:\n%s", firstLineDiff(cold, got))
	}
	s := cache.Stats().Snapshot()
	if s.ContextHits != int64(len(group)) {
		t.Fatalf("warm run context hits = %d, want %d", s.ContextHits, len(group))
	}
}

// TestIncrementalDiskCache proves pair verdicts and clique artifacts
// survive a process restart (modelled as a fresh Cache over the same
// directory): the second cold-memory run hits disk for every pair and
// clique and still matches byte-for-byte.
func TestIncrementalDiskCache(t *testing.T) {
	fx := determinismFixtures(t)[0]
	dir := t.TempDir()
	c1, err := incr.New(0).WithDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := mergeAllFingerprintCache(t, fx.g, fx.modes, c1)

	c2, err := incr.New(0).WithDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := mergeAllFingerprintCache(t, fx.g, fx.modes, c2); got != want {
		t.Fatalf("disk-warm merge differs:\n%s", firstLineDiff(want, got))
	}
	s := c2.Stats().Snapshot()
	if s.PairMisses != 0 || s.CliqueMisses != 0 {
		t.Fatalf("disk-backed rerun missed: %+v", s)
	}
	// Contexts are memory-only, so the fresh process rebuilds none of the
	// merged cliques' contexts (clique hits skip context builds entirely).
	if s.CliqueHits == 0 {
		t.Fatal("no clique hits from disk")
	}
}

// TestOptionsKeyExcludesParallelism pins the cache-key contract: results
// cached at one parallelism are valid at every other, while every
// result-affecting option changes the key.
func TestOptionsKeyExcludesParallelism(t *testing.T) {
	base := Options{}.incrOptionsKey()
	if got := (Options{Parallelism: 7}).incrOptionsKey(); got != base {
		t.Fatal("Parallelism leaked into the options key")
	}
	if got := (Options{Tolerance: 0.5}).incrOptionsKey(); got == base {
		t.Fatal("Tolerance missing from the options key")
	}
	if got := (Options{MaxRefineIterations: 9}).incrOptionsKey(); got == base {
		t.Fatal("MaxRefineIterations missing from the options key")
	}
}
