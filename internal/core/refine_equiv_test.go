package core

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/obs"
	"modemerge/internal/sdc"
)

// slowPathFixtures are two fixed designs chosen so the optimizations the
// SlowPaths knobs disable actually execute on the fast path (verified by
// TestSlowKnobCoverage below):
//
//   - "functional": a functional-only family — every mode of a group
//     creates the same clocks, so the cross-mode fingerprint prune is
//     viable and pass 1 prunes agreeing endpoints (NoEndpointPrune flips
//     live behaviour);
//   - "variants": the generator's scan/test variants — prune is not
//     viable, but refinement takes multiple iterations, so the
//     merged-context memo replays endpoints across rebuilds
//     (NoCacheTransfer and NoRelationCache flip live behaviour) and
//     pass 3 consults the reconvergence prune on every forwarded pair
//     (NoPairPrune flips the consultation; the skip branch itself never
//     fires on generated designs — their forwarded pairs always have a
//     reconvergent cone, which is exactly what the prune must refuse).
func slowPathFixtures(t *testing.T) []struct {
	name  string
	g     *graph.Graph
	modes []*sdc.Mode
} {
	t.Helper()
	type fx struct {
		name   string
		design gen.DesignSpec
		family gen.FamilySpec
	}
	fixtures := []fx{
		{
			name: "functional",
			design: gen.DesignSpec{Name: "slow_f", Seed: 33, Domains: 3, BlocksPerDomain: 1,
				Stages: 2, RegsPerStage: 3, CloudDepth: 1, CrossPaths: 3, IOPairs: 1},
			family: gen.FamilySpec{Groups: 2, ModesPerGroup: []int{3, 2}, BasePeriod: 2,
				FunctionalOnly: true},
		},
		{
			name: "variants",
			design: gen.DesignSpec{Name: "slow_v", Seed: 11, Domains: 2, BlocksPerDomain: 2,
				Stages: 2, RegsPerStage: 2, CloudDepth: 1, CrossPaths: 2, IOPairs: 1},
			family: gen.FamilySpec{Groups: 2, ModesPerGroup: []int{3, 2}, BasePeriod: 2},
		},
	}
	var out []struct {
		name  string
		g     *graph.Graph
		modes []*sdc.Mode
	}
	for _, f := range fixtures {
		gd, err := gen.Generate(f.design)
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.Build(gd.Design)
		if err != nil {
			t.Fatal(err)
		}
		var modes []*sdc.Mode
		for _, m := range gd.Modes(f.family) {
			mode, _, err := sdc.Parse(m.Name, m.Text, g.Design)
			if err != nil {
				t.Fatalf("%s mode %s: %v", f.name, m.Name, err)
			}
			modes = append(modes, mode)
		}
		out = append(out, struct {
			name  string
			g     *graph.Graph
			modes []*sdc.Mode
		}{f.name, g, modes})
	}
	return out
}

// slowFingerprint folds everything the SlowPaths equivalence guarantee
// covers — merged SDC text, explain-report JSON and the mergeability
// conflict list — into one comparable string.
func slowFingerprint(t *testing.T, g *graph.Graph, modes []*sdc.Mode, opt Options) string {
	t.Helper()
	merged, reports, mb, err := MergeAll(context.Background(), g, modes, opt)
	if err != nil {
		t.Fatalf("MergeAll(%+v): %v", opt.Slow, err)
	}
	var b strings.Builder
	for i := range merged {
		b.WriteString("== " + merged[i].Name + "\n")
		b.WriteString(sdc.Write(merged[i]))
		ej, err := json.Marshal(reports[i].Explain(merged[i].Name))
		if err != nil {
			t.Fatal(err)
		}
		b.Write(ej)
		b.WriteByte('\n')
	}
	for _, c := range mb.Conflicts {
		fmt.Fprintf(&b, "conflict %s|%s|%s\n", c.A, c.B, c.Reason)
	}
	return b.String()
}

// slowKnobs enumerates every SlowPaths knob individually by name.
func slowKnobs() map[string]SlowPaths {
	return map[string]SlowPaths{
		"NoRelationCache": {NoRelationCache: true},
		"NoEndpointPrune": {NoEndpointPrune: true},
		"NoPairPrune":     {NoPairPrune: true},
		"NoCacheTransfer": {NoCacheTransfer: true},
	}
}

// TestSlowKnobEquivalence pins the contract Options.Slow documents: every
// data-refinement optimization is pure speed — disabling any knob (and
// all of them together), at sequential and parallel worker counts, keeps
// the merged SDC, explain reports and conflicts byte-identical.
func TestSlowKnobEquivalence(t *testing.T) {
	for _, fx := range slowPathFixtures(t) {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			t.Parallel()
			baseline := slowFingerprint(t, fx.g, fx.modes, Options{Parallelism: 1})
			if baseline == "" {
				t.Fatal("empty baseline fingerprint")
			}
			cases := slowKnobs()
			cases["all"] = SlowPaths{NoRelationCache: true, NoEndpointPrune: true,
				NoPairPrune: true, NoCacheTransfer: true}
			for name, slow := range cases {
				for _, p := range []int{1, 4} {
					got := slowFingerprint(t, fx.g, fx.modes, Options{Parallelism: p, Slow: slow})
					if got != baseline {
						t.Errorf("%s parallelism=%d: output differs from fast path:\n%s",
							name, p, firstLineDiff(baseline, got))
					}
				}
			}
		})
	}
}

// mergeCounters runs a traced merge and sums every span counter.
func mergeCounters(t *testing.T, g *graph.Graph, modes []*sdc.Mode, opt Options) map[string]int64 {
	t.Helper()
	tr := obs.NewTracer()
	sp := tr.Start("merge")
	opt.Trace = sp
	_, _, _, err := MergeAll(context.Background(), g, modes, opt)
	sp.Finish()
	if err != nil {
		t.Fatal(err)
	}
	c := map[string]int64{}
	var walk func(vs []*obs.SpanView)
	walk = func(vs []*obs.SpanView) {
		for _, v := range vs {
			for k, n := range v.Counters {
				c[k] += n
			}
			walk(v.Children)
		}
	}
	walk(tr.Tree())
	return c
}

// TestSlowKnobCoverage proves the equivalence test above is not vacuous:
// on its fixtures the fast path actually prunes endpoints, replays
// memoized endpoints across refinement iterations, and consults the
// pass-3 pair prune — and disabling the matching knob makes the counter
// drop to zero.
func TestSlowKnobCoverage(t *testing.T) {
	fxs := slowPathFixtures(t)
	functional, variants := fxs[0], fxs[1]

	fast := mergeCounters(t, functional.g, functional.modes, Options{Parallelism: 1})
	if fast["pruned_endpoints"] == 0 {
		t.Error("functional fixture: endpoint prune never fired on the fast path")
	}
	noPrune := mergeCounters(t, functional.g, functional.modes,
		Options{Parallelism: 1, Slow: SlowPaths{NoEndpointPrune: true}})
	if noPrune["pruned_endpoints"] != 0 {
		t.Errorf("NoEndpointPrune still pruned %d endpoints", noPrune["pruned_endpoints"])
	}

	vfast := mergeCounters(t, variants.g, variants.modes, Options{Parallelism: 1})
	if vfast["replayed_endpoints"] == 0 {
		t.Error("variants fixture: endpoint memo never replayed on the fast path")
	}
	if vfast["pairs"] == 0 {
		t.Error("variants fixture: no pass-3 pairs — pair prune never consulted")
	}
	noTransfer := mergeCounters(t, variants.g, variants.modes,
		Options{Parallelism: 1, Slow: SlowPaths{NoCacheTransfer: true}})
	if noTransfer["replayed_endpoints"] != 0 {
		t.Errorf("NoCacheTransfer still replayed %d endpoints", noTransfer["replayed_endpoints"])
	}
}

// TestNameSet covers the nameSet helper the refinement passes and the
// equivalence checker share: insertion deduplicates and extraction is
// sorted regardless of insertion order.
func TestNameSet(t *testing.T) {
	s := nameSet{}
	if got := s.sorted(); len(got) != 0 {
		t.Fatalf("empty nameSet sorted = %v, want []", got)
	}
	for _, n := range []string{"z", "a", "m", "a", "z", "a"} {
		s.add(n)
	}
	got := s.sorted()
	want := []string{"a", "m", "z"}
	if len(got) != len(want) {
		t.Fatalf("sorted = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", got, want)
		}
	}
}
