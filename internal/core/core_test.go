package core

import (
	"context"
	"strings"
	"testing"

	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/sdc"
)

func paperGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.Build(gen.PaperCircuit())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func parseMode(t *testing.T, g *graph.Graph, name, src string) *sdc.Mode {
	t.Helper()
	m, _, err := sdc.Parse(name, src, g.Design)
	if err != nil {
		t.Fatalf("mode %s: %v", name, err)
	}
	return m
}

func mergeModes(t *testing.T, g *graph.Graph, srcs map[string]string, names ...string) (*sdc.Mode, *Report) {
	t.Helper()
	var modes []*sdc.Mode
	for _, n := range names {
		modes = append(modes, parseMode(t, g, n, srcs[n]))
	}
	mg, err := newMergerWithGraph(context.Background(), g, modes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := mg.Merge(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return merged, mg.Report
}

// requireEquivalent re-parses the written merged SDC and verifies the
// timing relationships match the individual modes.
func requireEquivalent(t *testing.T, g *graph.Graph, srcs map[string]string, merged *sdc.Mode, names ...string) *EquivalenceResult {
	t.Helper()
	// Round-trip the merged mode through SDC text: the written artifact
	// must behave identically.
	text := sdc.Write(merged)
	reparsed, _, err := sdc.Parse(merged.Name, text, g.Design)
	if err != nil {
		t.Fatalf("merged SDC does not re-parse: %v\n%s", err, text)
	}
	var modes []*sdc.Mode
	for _, n := range names {
		modes = append(modes, parseMode(t, g, n, srcs[n]))
	}
	res, err := CheckEquivalence(context.Background(), g, modes, reparsed, Options{})
	if err != nil {
		t.Fatalf("equivalence check: %v", err)
	}
	if !res.Equivalent() {
		t.Errorf("merged mode is optimistic:\n  %s\nmerged SDC:\n%s",
			strings.Join(res.OptimisticMismatches, "\n  "), text)
	}
	return res
}

// ---- Constraint Set 2: clock union and tolerance merging ----

var set2 = map[string]string{
	"A": `
create_clock -name clkA -period 10 [get_ports clk1]
create_clock -name clkB -period 20 [get_ports clk2]
set_clock_latency -min 0.50 [get_clocks clkB]
`,
	"B": `
create_clock -name clkC -period 20 [get_ports clk2]
create_clock -name clkB -period 5 [get_ports clk1]
set_clock_latency -min 0.48 [get_clocks clkC]
`,
}

func TestClockUnion(t *testing.T) {
	g := paperGraph(t)
	merged, rep := mergeModes(t, g, set2, "A", "B")
	// A:{clkA, clkB}, B:{clkC≡clkB, clkB(p5)} → 3 merged clocks.
	if len(merged.Clocks) != 3 {
		t.Fatalf("merged clocks = %v", merged.ClockNames())
	}
	names := map[string]bool{}
	for _, c := range merged.Clocks {
		names[c.Name] = true
	}
	if !names["clkA"] || !names["clkB"] {
		t.Errorf("expected clkA and clkB, got %v", merged.ClockNames())
	}
	// B's clkB conflicts with A's clkB name → renamed.
	if !names["clkB_1"] {
		t.Errorf("expected renamed clkB_1, got %v", merged.ClockNames())
	}
	if rep.RenamedClocks != 1 {
		t.Errorf("renamed = %d, want 1", rep.RenamedClocks)
	}
	if rep.MergedClocks != 3 {
		t.Errorf("MergedClocks = %d, want 3", rep.MergedClocks)
	}
}

func TestClockConstraintTolerance(t *testing.T) {
	g := paperGraph(t)
	merged, _ := mergeModes(t, g, set2, "A", "B")
	// clkB latency: min(0.50, 0.48) = 0.48 (§3.1.2).
	var got float64
	found := false
	for _, l := range merged.ClockLatencies {
		for _, c := range l.Clocks {
			if c == "clkB" {
				got = l.Value
				found = true
			}
		}
	}
	if !found || got != 0.48 {
		t.Errorf("clkB merged latency = %v (found=%v), want 0.48", got, found)
	}
}

// ---- Constraint Set 3: clock refinement ----

var set3 = map[string]string{
	"A": `
create_clock -period 10 -name clkA [get_ports clk1]
create_clock -period 20 -name clkB [get_ports clk2]
set_case_analysis 0 sel1
set_case_analysis 1 sel2
`,
	"B": `
create_clock -period 10 -name clkA [get_ports clk1]
create_clock -period 20 -name clkB [get_ports clk2]
set_case_analysis 1 sel1
set_case_analysis 0 sel2
`,
}

func TestClockRefinement(t *testing.T) {
	g := paperGraph(t)
	merged, rep := mergeModes(t, g, set3, "A", "B")
	// Conflicting cases translate to inferred disables (paper's CSTR1/2).
	disabled := map[string]bool{}
	for _, d := range merged.Disables {
		for _, o := range d.Objects {
			disabled[o.Name] = true
		}
	}
	if !disabled["sel1"] || !disabled["sel2"] {
		t.Errorf("expected inferred disables on sel1/sel2, got %v", disabled)
	}
	if rep.TranslatedCases != 2 {
		t.Errorf("TranslatedCases = %d, want 2", rep.TranslatedCases)
	}
	// Clock refinement must stop clkA at mux1/Z (paper's CSTR3): in both
	// modes the mux select is 1, so clkA never passes.
	foundStop := false
	for _, s := range merged.ClockSenses {
		if !s.StopPropagation {
			continue
		}
		for _, c := range s.Clocks {
			if c == "clkA" {
				for _, p := range s.Pins {
					if p.Name == "mux1/Z" {
						foundStop = true
					}
				}
			}
		}
	}
	if !foundStop {
		t.Errorf("expected stop_propagation of clkA at mux1/Z; senses: %+v", merged.ClockSenses)
	}
	requireEquivalent(t, g, set3, merged, "A", "B")
}

// ---- Constraint Set 4: exception uniquification ----

var set4 = map[string]string{
	"A": `
create_clock -name clkA -period 10 [get_ports clk1]
set_case_analysis 0 [get_pins mux1/S]
set_multicycle_path 2 -from [get_pins rA/CP]
`,
	"B": `
create_clock -name clkB -period 8 [get_ports clk1]
set_case_analysis 1 [get_pins mux1/S]
`,
}

func TestExceptionUniquification(t *testing.T) {
	g := paperGraph(t)
	merged, rep := mergeModes(t, g, set4, "A", "B")
	if rep.UniquifiedExceptions != 1 {
		t.Fatalf("UniquifiedExceptions = %d, want 1 (report: %+v)", rep.UniquifiedExceptions, rep)
	}
	// Find the uniquified MCP: -from [get_clocks clkA] -through rA/CP.
	var mcp *sdc.Exception
	for _, e := range merged.Exceptions {
		if e.Kind == sdc.MulticyclePath {
			mcp = e
		}
	}
	if mcp == nil {
		t.Fatal("multicycle path missing from merged mode")
	}
	if len(mcp.From.Clocks) != 1 || mcp.From.Clocks[0] != "clkA" {
		t.Errorf("uniquified MCP from-clocks = %v, want [clkA]", mcp.From.Clocks)
	}
	foundThrough := false
	for _, th := range mcp.Throughs {
		for _, p := range th.Pins {
			if p.Name == "rA/CP" {
				foundThrough = true
			}
		}
	}
	if !foundThrough {
		t.Errorf("uniquified MCP lost the rA/CP anchor: %s", sdc.WriteException(mcp))
	}
	if mcp.Multiplier != 2 {
		t.Errorf("multiplier = %d, want 2", mcp.Multiplier)
	}
	requireEquivalent(t, g, set4, merged, "A", "B")
}

func TestUniquificationRefusedWhenClockShared(t *testing.T) {
	// Same clock in both modes: restricting by clock cannot isolate the
	// exception → it must be dropped and recovered (FP) or reported
	// (MCP pessimism).
	srcs := map[string]string{
		"A": `
create_clock -name clkA -period 10 [get_ports clk1]
set_false_path -from [get_pins rA/CP]
`,
		"B": `
create_clock -name clkA -period 10 [get_ports clk1]
`,
	}
	g := paperGraph(t)
	merged, rep := mergeModes(t, g, srcs, "A", "B")
	if rep.UniquifiedExceptions != 0 {
		t.Errorf("exception wrongly uniquified")
	}
	if rep.DroppedExceptions != 1 {
		t.Errorf("DroppedExceptions = %d, want 1", rep.DroppedExceptions)
	}
	// The FP applies only in mode A; mode B times rA paths → merged must
	// time them (target V). No refinement FP may reappear.
	for _, e := range merged.Exceptions {
		if e.Kind == sdc.FalsePath {
			t.Errorf("unexpected false path in merged mode: %s", sdc.WriteException(e))
		}
	}
	requireEquivalent(t, g, srcs, merged, "A", "B")
}

// ---- Constraint Set 5: data refinement by launch-clock blocking ----

var set5 = map[string]string{
	"A": `
create_clock -name ClkA -period 2 [get_ports clk1]
set_input_delay 0.5 -clock ClkA [get_ports in1]
set_output_delay 0.5 -clock ClkA [get_ports out1]
`,
	"B": `
create_clock -name ClkB -period 1 [get_ports clk1]
set_input_delay 0.5 -clock ClkB [get_ports in1]
set_output_delay 0.5 -clock ClkB [get_ports out1]
set_case_analysis 0 rB/Q
`,
}

func TestDataRefinementClockStop(t *testing.T) {
	g := paperGraph(t)
	merged, rep := mergeModes(t, g, set5, "A", "B")
	// Clocks must be physically exclusive (never co-exist in a mode).
	if len(merged.ClockGroups) == 0 {
		t.Fatal("expected inferred clock groups")
	}
	if merged.ClockGroups[0].Kind != sdc.PhysicallyExclusive {
		t.Errorf("clock group kind = %v", merged.ClockGroups[0].Kind)
	}
	// Data refinement: ClkB-launched data never appears at rB/Q or
	// and1/Z in any individual mode (paper's CSTR6).
	var fp *sdc.Exception
	for _, e := range merged.Exceptions {
		if e.Kind == sdc.FalsePath && len(e.From.Clocks) == 1 && e.From.Clocks[0] == "ClkB" {
			fp = e
		}
	}
	if fp == nil {
		t.Fatalf("missing launch-block false path; merged:\n%s", sdc.Write(merged))
	}
	pins := map[string]bool{}
	for _, th := range fp.Throughs {
		for _, p := range th.Pins {
			pins[p.Name] = true
		}
	}
	if !pins["rB/Q"] || !pins["and1/Z"] {
		t.Errorf("launch-block through pins = %v, want rB/Q and and1/Z", pins)
	}
	if rep.LaunchBlocks == 0 {
		t.Error("report did not count launch blocks")
	}
	requireEquivalent(t, g, set5, merged, "A", "B")
}

// ---- Constraint Set 6: the 3-pass algorithm ----

var set6 = map[string]string{
	"A": `
create_clock -p 10 -name clkA [get_ports clk1]
set_false_path -to rX/D
set_false_path -to rY/D
set_false_path -through inv3/Z
`,
	"B": `
create_clock -p 10 -name clkA [get_ports clk1]
set_false_path -from rA/CP
set_false_path -to rZ/D
`,
}

func TestThreePassSet6(t *testing.T) {
	g := paperGraph(t)
	merged, rep := mergeModes(t, g, set6, "A", "B")
	text := sdc.Write(merged)

	// CSTR1: paths to rX/D false in both modes → pass-1 fix.
	// CSTR2: rA/CP → rY/D false in both → pass-2 fix.
	// CSTR3: rC/CP through inv3 leg → rZ/D false in both → pass-3 fix.
	if rep.Pass1Mismatch == 0 {
		t.Error("expected pass-1 mismatches")
	}
	if rep.Pass2Mismatch == 0 {
		t.Error("expected pass-2 mismatches")
	}
	if rep.Pass3Mismatch == 0 {
		t.Error("expected pass-3 mismatches")
	}
	if rep.AddedFalsePaths < 3 {
		t.Errorf("AddedFalsePaths = %d, want >= 3\n%s", rep.AddedFalsePaths, text)
	}

	type want struct {
		desc  string
		check func(e *sdc.Exception) bool
	}
	hasPin := func(pl *sdc.PointList, name string) bool {
		if pl == nil {
			return false
		}
		for _, p := range pl.Pins {
			if p.Name == name {
				return true
			}
		}
		return false
	}
	throughHas := func(e *sdc.Exception, name string) bool {
		for _, th := range e.Throughs {
			if hasPin(th, name) {
				return true
			}
		}
		return false
	}
	wants := []want{
		{"false path to rX/D", func(e *sdc.Exception) bool {
			return hasPin(e.To, "rX/D") || throughHas(e, "rX/D")
		}},
		{"false path rA/CP → rY/D", func(e *sdc.Exception) bool {
			fromA := hasPin(e.From, "rA/CP") || throughHas(e, "rA/CP")
			toY := hasPin(e.To, "rY/D") || throughHas(e, "rY/D")
			return fromA && toY
		}},
		{"false path rC/CP through inv3 leg to rZ/D", func(e *sdc.Exception) bool {
			fromC := hasPin(e.From, "rC/CP") || throughHas(e, "rC/CP")
			leg := throughHas(e, "inv3/A") || throughHas(e, "inv3/Z")
			toZ := hasPin(e.To, "rZ/D") || throughHas(e, "rZ/D")
			return fromC && leg && toZ
		}},
	}
	for _, w := range wants {
		found := false
		for _, e := range merged.Exceptions {
			if e.Kind == sdc.FalsePath && w.check(e) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing %s; merged:\n%s", w.desc, text)
		}
	}
	res := requireEquivalent(t, g, set6, merged, "A", "B")
	if res.MatchedGroups == 0 {
		t.Error("no matched groups in equivalence result")
	}
}

// ---- Table 1 / Constraint Set 1 merged with itself: identity ----

func TestMergeIdenticalModes(t *testing.T) {
	src := `
create_clock -name clkA -period 10 [get_ports clk1]
set_multicycle_path 2 -through [get_pins inv1/Z]
set_false_path -through [get_pins and1/Z]
`
	srcs := map[string]string{"A": src, "B": src}
	g := paperGraph(t)
	merged, rep := mergeModes(t, g, srcs, "A", "B")
	if len(merged.Clocks) != 1 {
		t.Errorf("clocks = %v", merged.ClockNames())
	}
	if len(merged.Exceptions) != 2 {
		t.Errorf("exceptions = %d, want 2 (intersection of identical sets)", len(merged.Exceptions))
	}
	if rep.AddedFalsePaths != 0 || rep.ClockStops != 0 {
		t.Errorf("identity merge added constraints: %+v", rep)
	}
	requireEquivalent(t, g, srcs, merged, "A", "B")
}

// ---- Mergeability and cliques (Figure 2) ----

func TestMergeabilityAndCliques(t *testing.T) {
	g := paperGraph(t)
	mk := func(name, tr string) *sdc.Mode {
		return parseMode(t, g, name, `
create_clock -name clkA -period 10 [get_ports clk1]
set_input_transition `+tr+` [get_ports in1]
`)
	}
	// Modes 0,1 share tr=0.1; modes 2,3 share tr=0.5; cross pairs exceed
	// the 5% tolerance.
	modes := []*sdc.Mode{mk("m0", "0.10"), mk("m1", "0.102"), mk("m2", "0.50"), mk("m3", "0.51")}
	mb, err := AnalyzeMergeability(g, modes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !mb.Edge[0][1] || !mb.Edge[2][3] {
		t.Error("compatible pairs not mergeable")
	}
	if mb.Edge[0][2] || mb.Edge[1][3] {
		t.Error("incompatible pairs mergeable")
	}
	cliques := mb.Cliques()
	if len(cliques) != 2 {
		t.Fatalf("cliques = %v", mb.GroupNames(cliques))
	}
	if len(mb.Conflicts) == 0 {
		t.Error("no conflicts recorded")
	}
	out := FormatMergeability(mb, cliques)
	if !strings.Contains(out, "M1") || !strings.Contains(out, "tolerance") {
		t.Errorf("format output incomplete:\n%s", out)
	}
}

func TestMergeAll(t *testing.T) {
	g := paperGraph(t)
	srcs := []string{
		`create_clock -name clkA -period 10 [get_ports clk1]
set_input_transition 0.1 [get_ports in1]`,
		`create_clock -name clkA -period 10 [get_ports clk1]
set_input_transition 0.1 [get_ports in1]
set_false_path -to rX/D`,
		`create_clock -name clkA -period 10 [get_ports clk1]
set_input_transition 0.9 [get_ports in1]`,
	}
	var modes []*sdc.Mode
	for i, s := range srcs {
		modes = append(modes, parseMode(t, g, string(rune('a'+i)), s))
	}
	out, reports, mb, err := MergeAll(context.Background(), g, modes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("merged into %d modes, want 2 (%v)", len(out), mb.GroupNames(mb.Cliques()))
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
}

// ---- Naive baseline ----

func TestNaiveMergeLosesRefinement(t *testing.T) {
	g := paperGraph(t)
	var modes []*sdc.Mode
	for _, n := range []string{"A", "B"} {
		modes = append(modes, parseMode(t, g, n, set6[n]))
	}
	naive, err := NaiveMerge(context.Background(), g, modes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// No exception is common to both modes → naive mode has none.
	if len(naive.Exceptions) != 0 {
		t.Errorf("naive exceptions = %d, want 0", len(naive.Exceptions))
	}
	// The naive merge times paths that are false in every individual
	// mode: inaccurate (pessimistic) groups the refined merge does not
	// have.
	res, err := CheckEquivalence(context.Background(), g, modes, naive, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PessimisticGroups == 0 {
		t.Errorf("naive merge shows no pessimistic groups: %s", res)
	}
	refined, _ := mergeModes(t, g, set6, "A", "B")
	refRes, err := CheckEquivalence(context.Background(), g, modes, refined, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if refRes.PessimisticGroups >= res.PessimisticGroups {
		t.Errorf("graph-based merge (%d pessimistic) not better than naive (%d)",
			refRes.PessimisticGroups, res.PessimisticGroups)
	}
}

// ---- Equivalence checker standalone ----

func TestEquivalenceDetectsOptimism(t *testing.T) {
	g := paperGraph(t)
	individual := []*sdc.Mode{parseMode(t, g, "A", `
create_clock -name clkA -period 10 [get_ports clk1]
set_max_delay 1 -to [get_pins rX/D]
`)}
	// A "merged" mode that silently drops the max_delay.
	broken := parseMode(t, g, "broken", `
create_clock -name clkA -period 10 [get_ports clk1]
`)
	res, err := CheckEquivalence(context.Background(), g, individual, broken, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent() {
		t.Error("dropped max_delay not detected as optimistic")
	}
}

func TestEquivalenceAcceptsIdentity(t *testing.T) {
	g := paperGraph(t)
	src := `
create_clock -name clkA -period 10 [get_ports clk1]
set_false_path -through [get_pins and1/Z]
set_multicycle_path 3 -to [get_pins rX/D]
`
	mode := parseMode(t, g, "A", src)
	same := parseMode(t, g, "same", src)
	res, err := CheckEquivalence(context.Background(), g, []*sdc.Mode{mode}, same, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent() || res.PessimisticGroups != 0 {
		t.Errorf("identity not equivalent: %s", res)
	}
}
