package experiments

import (
	"context"
	"testing"

	"modemerge/internal/core"
	"modemerge/internal/sta"
)

func TestPaperDesignsStructure(t *testing.T) {
	designs := PaperDesigns(1)
	if len(designs) != 6 {
		t.Fatalf("designs = %d, want 6 (A–F)", len(designs))
	}
	wantModes := map[string]int{"A": 95, "B": 3, "C": 12, "D": 3, "E": 5, "F": 3}
	wantMerged := map[string]int{"A": 16, "B": 1, "C": 1, "D": 1, "E": 1, "F": 2}
	for _, c := range designs {
		if got := c.Family.TotalModes(); got != wantModes[c.Label] {
			t.Errorf("design %s: %d modes, want %d", c.Label, got, wantModes[c.Label])
		}
		if c.Family.Groups != wantMerged[c.Label] {
			t.Errorf("design %s: %d groups, want %d", c.Label, c.Family.Groups, wantMerged[c.Label])
		}
		if c.PaperModes != wantModes[c.Label] || c.PaperMerged != wantMerged[c.Label] {
			t.Errorf("design %s: paper columns inconsistent", c.Label)
		}
	}
	// Relative sizes follow the paper's 0.2 : 1.4 : 2.8 progression.
	est := map[string]int{}
	for _, c := range designs {
		est[c.Label] = c.Spec.CellEstimate()
	}
	if !(est["A"] <= est["C"] && est["C"] < est["D"] && est["D"] <= est["E"] && est["E"] < est["F"]) {
		t.Errorf("size progression broken: %v", est)
	}
}

func TestPaperDesignsScale(t *testing.T) {
	small := PaperDesigns(0.5)[0].Spec.CellEstimate()
	big := PaperDesigns(2)[0].Spec.CellEstimate()
	if big <= small {
		t.Errorf("scaling has no effect: %d vs %d", small, big)
	}
	// Degenerate scale falls back to 1.
	def := PaperDesigns(0)[0].Spec.CellEstimate()
	one := PaperDesigns(1)[0].Spec.CellEstimate()
	if def != one {
		t.Errorf("scale 0 should default to 1")
	}
}

func TestConformityMetric(t *testing.T) {
	ind := map[string]endpointWorst{
		"a": {slack: 1.0, period: 10, has: true},
		"b": {slack: 2.0, period: 10, has: true},
		"c": {slack: 3.0, period: 10, has: true},
	}
	merged := map[string]endpointWorst{
		"a": {slack: 1.05, period: 10, has: true}, // within 1% of 10
		"b": {slack: 2.5, period: 10, has: true},  // off by 0.5 > 0.1
		// c missing in merged → non-conforming
	}
	pct, n := Conformity(ind, merged)
	if n != 3 {
		t.Errorf("endpoints = %d, want 3", n)
	}
	if pct < 33.2 || pct > 33.4 {
		t.Errorf("conformity = %g, want 33.3", pct)
	}
	// Empty input.
	pct, n = Conformity(map[string]endpointWorst{}, merged)
	if pct != 100 || n != 0 {
		t.Errorf("empty conformity = %g/%d", pct, n)
	}
}

func TestFigure2DemoStructure(t *testing.T) {
	mb, cliques, err := Figure2Demo()
	if err != nil {
		t.Fatal(err)
	}
	if len(mb.ModeNames) != 9 {
		t.Errorf("modes = %d, want 9", len(mb.ModeNames))
	}
	if len(cliques) != 3 {
		t.Fatalf("cliques = %v", mb.GroupNames(cliques))
	}
	sizes := []int{len(cliques[0]), len(cliques[1]), len(cliques[2])}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 2 {
		t.Errorf("clique sizes = %v, want [4 3 2]", sizes)
	}
}

func TestEndToEndSmallest(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	c := PaperDesigns(0.25)[1] // design B, tiny
	p, err := Prepare(c)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := RunTable5(context.Background(), p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mr.Row.Merged != 1 {
		t.Errorf("design B merged = %d, want 1", mr.Row.Merged)
	}
	row6, err := RunTable6(context.Background(), mr, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if row6.ConformityPct < 99 {
		t.Errorf("conformity = %g", row6.ConformityPct)
	}
	abl, err := RunNaiveAblation(context.Background(), mr, core.Options{}, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if abl.NaiveConformity > abl.GraphConformity {
		t.Errorf("naive (%g) beat graph (%g)", abl.NaiveConformity, abl.GraphConformity)
	}
}
