// Package experiments reproduces the paper's evaluation: Table 5 (mode
// reduction and merging runtime on designs A–F), Table 6 (STA runtime with
// individual vs merged modes and endpoint-slack conformity), the Figure 2
// mergeability graph, and two ablations (naive textual merging, worker
// scaling). Both cmd/tables and the root benchmark suite drive it.
package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"modemerge/internal/core"
	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/sdc"
	"modemerge/internal/sta"
)

// DesignCase is one row of the paper's evaluation: a synthetic design
// shaped like the corresponding industrial design plus its mode family.
type DesignCase struct {
	Label string
	// PaperMCells is the size column of Table 5 (millions of cells) —
	// reproduced at a scaled-down cell count.
	PaperMCells float64
	// PaperModes / PaperMerged are Table 5's mode counts, mirrored by the
	// generated family structure.
	PaperModes  int
	PaperMerged int
	Spec        gen.DesignSpec
	Family      gen.FamilySpec
}

// PaperDesigns returns the six design cases of Tables 5/6. scale ≥ 1
// multiplies the register count per stage (and so roughly the cell
// count); scale 1 keeps the suite laptop-sized while preserving the
// relative sizes 0.2 : 0.2 : 0.3 : 1.4 : 1.6 : 2.8.
func PaperDesigns(scale float64) []DesignCase {
	if scale <= 0 {
		scale = 1
	}
	regs := func(base int) int {
		n := int(math.Round(float64(base) * scale))
		if n < 2 {
			n = 2
		}
		return n
	}
	groups := func(sizes ...int) gen.FamilySpec {
		return gen.FamilySpec{Groups: len(sizes), ModesPerGroup: sizes, BasePeriod: 2}
	}
	// Design A: 95 modes in 16 merge groups (15×6 + 1×5).
	aSizes := make([]int, 16)
	for i := range aSizes {
		aSizes[i] = 6
	}
	aSizes[15] = 5
	return []DesignCase{
		{
			Label: "A", PaperMCells: 0.2, PaperModes: 95, PaperMerged: 16,
			Spec: gen.DesignSpec{Name: "designA", Seed: 0xA, Domains: 2, BlocksPerDomain: 2,
				Stages: 4, RegsPerStage: regs(10), CloudDepth: 3, CrossPaths: 4},
			Family: groups(aSizes...),
		},
		{
			Label: "B", PaperMCells: 0.2, PaperModes: 3, PaperMerged: 1,
			Spec: gen.DesignSpec{Name: "designB", Seed: 0xB, Domains: 2, BlocksPerDomain: 2,
				Stages: 4, RegsPerStage: regs(10), CloudDepth: 3, CrossPaths: 4},
			Family: groups(3),
		},
		{
			Label: "C", PaperMCells: 0.3, PaperModes: 12, PaperMerged: 1,
			Spec: gen.DesignSpec{Name: "designC", Seed: 0xC, Domains: 2, BlocksPerDomain: 3,
				Stages: 4, RegsPerStage: regs(12), CloudDepth: 3, CrossPaths: 4},
			Family: groups(12),
		},
		{
			Label: "D", PaperMCells: 1.4, PaperModes: 3, PaperMerged: 1,
			Spec: gen.DesignSpec{Name: "designD", Seed: 0xD, Domains: 3, BlocksPerDomain: 3,
				Stages: 5, RegsPerStage: regs(24), CloudDepth: 4, CrossPaths: 6},
			Family: groups(3),
		},
		{
			Label: "E", PaperMCells: 1.6, PaperModes: 5, PaperMerged: 1,
			Spec: gen.DesignSpec{Name: "designE", Seed: 0xE, Domains: 3, BlocksPerDomain: 3,
				Stages: 5, RegsPerStage: regs(27), CloudDepth: 4, CrossPaths: 6},
			Family: groups(5),
		},
		{
			Label: "F", PaperMCells: 2.8, PaperModes: 3, PaperMerged: 2,
			Spec: gen.DesignSpec{Name: "designF", Seed: 0xF, Domains: 4, BlocksPerDomain: 3,
				Stages: 6, RegsPerStage: regs(30), CloudDepth: 4, CrossPaths: 8},
			Family: groups(2, 1),
		},
	}
}

// Prepared holds a generated design with its parsed modes, ready for
// merging and STA.
type Prepared struct {
	Case  DesignCase
	Gen   *gen.Generated
	Graph *graph.Graph
	Modes []*sdc.Mode
	Cells int
}

// Prepare generates the design and parses every mode of the family.
func Prepare(c DesignCase) (*Prepared, error) {
	g, err := gen.Generate(c.Spec)
	if err != nil {
		return nil, err
	}
	tg, err := graph.Build(g.Design)
	if err != nil {
		return nil, err
	}
	p := &Prepared{Case: c, Gen: g, Graph: tg, Cells: g.Design.Stats().Cells}
	for _, ms := range g.Modes(c.Family) {
		mode, _, err := sdc.Parse(ms.Name, ms.Text, g.Design)
		if err != nil {
			return nil, fmt.Errorf("design %s mode %s: %w", c.Label, ms.Name, err)
		}
		p.Modes = append(p.Modes, mode)
	}
	return p, nil
}

// Table5Row is one row of Table 5.
type Table5Row struct {
	Design       string
	Cells        int
	Individual   int
	Merged       int
	ReductionPct float64
	MergeTime    time.Duration
}

// MergeResult carries the merged modes forward into Table 6.
type MergeResult struct {
	Prepared *Prepared
	Merged   []*sdc.Mode
	Reports  []*core.Report
	Mb       *core.Mergeability
	Row      Table5Row
}

// RunTable5 merges a prepared design's modes and measures the reduction
// and merge runtime.
func RunTable5(cx context.Context, p *Prepared, opt core.Options) (*MergeResult, error) {
	start := time.Now()
	merged, reports, mb, err := core.MergeAll(cx, p.Graph, p.Modes, opt)
	if err != nil {
		return nil, fmt.Errorf("design %s: %w", p.Case.Label, err)
	}
	elapsed := time.Since(start)
	row := Table5Row{
		Design:     p.Case.Label,
		Cells:      p.Cells,
		Individual: len(p.Modes),
		Merged:     len(merged),
		MergeTime:  elapsed,
	}
	row.ReductionPct = 100 * float64(row.Individual-row.Merged) / float64(row.Individual)
	return &MergeResult{Prepared: p, Merged: merged, Reports: reports, Mb: mb, Row: row}, nil
}

// Table6Row is one row of Table 6.
type Table6Row struct {
	Design        string
	IndividualSTA time.Duration
	MergedSTA     time.Duration
	ReductionPct  float64
	ConformityPct float64
	Endpoints     int
}

// endpointWorst tracks the worst setup slack and its capture period.
type endpointWorst struct {
	slack  float64
	period float64
	has    bool
}

// staRepeats is how often the STA campaigns of Table 6 run; the reported
// time is the fastest repeat (standard benchmarking practice — a single
// run on a busy machine is too noisy for a runtime table).
const staRepeats = 3

// staAll runs STA for every mode, returning campaign runtime (best of
// staRepeats) and per-endpoint worst setup slack across the modes.
func staAll(cx context.Context, g *graph.Graph, modes []*sdc.Mode, opt sta.Options) (time.Duration, map[string]endpointWorst, error) {
	worst := map[string]endpointWorst{}
	best := time.Duration(0)
	for rep := 0; rep < staRepeats; rep++ {
		start := time.Now()
		for _, m := range modes {
			ctx, err := sta.NewContext(g, m, opt)
			if err != nil {
				return 0, nil, fmt.Errorf("mode %s: %w", m.Name, err)
			}
			results := ctx.AnalyzeEndpoints(cx)
			if err := cx.Err(); err != nil {
				return 0, nil, err
			}
			for _, r := range results {
				if !r.HasSetup {
					continue
				}
				w := worst[r.Name]
				if !w.has || r.SetupSlack < w.slack {
					w.has = true
					w.slack = r.SetupSlack
					w.period = r.CapturePeriod
				}
				worst[r.Name] = w
			}
		}
		if elapsed := time.Since(start); rep == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, worst, nil
}

// Conformity computes the paper's QoR metric: the percentage of endpoints
// whose merged-mode worst slack deviates from the individual-mode worst
// slack by at most 1% of the capture clock period.
func Conformity(individual, merged map[string]endpointWorst) (pct float64, endpoints int) {
	conforming, total := 0, 0
	for name, iw := range individual {
		if !iw.has {
			continue
		}
		total++
		mw, ok := merged[name]
		if !ok || !mw.has {
			continue // endpoint unchecked in merged modes: non-conforming
		}
		period := iw.period
		if period <= 0 {
			period = mw.period
		}
		if period <= 0 {
			continue
		}
		if math.Abs(mw.slack-iw.slack) <= 0.01*period {
			conforming++
		}
	}
	if total == 0 {
		return 100, 0
	}
	return 100 * float64(conforming) / float64(total), total
}

// RunTable6 measures STA runtime with the individual modes versus the
// merged modes and the endpoint-slack conformity.
func RunTable6(cx context.Context, mr *MergeResult, opt sta.Options) (Table6Row, error) {
	p := mr.Prepared
	indTime, indWorst, err := staAll(cx, p.Graph, p.Modes, opt)
	if err != nil {
		return Table6Row{}, err
	}
	mergedTime, mergedWorst, err := staAll(cx, p.Graph, mr.Merged, opt)
	if err != nil {
		return Table6Row{}, err
	}
	conf, endpoints := Conformity(indWorst, mergedWorst)
	row := Table6Row{
		Design:        p.Case.Label,
		IndividualSTA: indTime,
		MergedSTA:     mergedTime,
		ConformityPct: conf,
		Endpoints:     endpoints,
	}
	if indTime > 0 {
		row.ReductionPct = 100 * float64(indTime-mergedTime) / float64(indTime)
	}
	return row, nil
}

// AblationRow compares graph-based merging with the naive textual
// baseline on one design.
type AblationRow struct {
	Design          string
	GraphConformity float64
	NaiveConformity float64
	GraphFalsePaths int
}

// RunNaiveAblation merges each clique naively and compares conformity
// against the graph-based result.
func RunNaiveAblation(cx context.Context, mr *MergeResult, opt core.Options, staOpt sta.Options) (AblationRow, error) {
	p := mr.Prepared
	cliques := mr.Mb.Cliques()
	var naiveModes []*sdc.Mode
	for _, clique := range cliques {
		if len(clique) == 1 {
			naiveModes = append(naiveModes, p.Modes[clique[0]])
			continue
		}
		group := make([]*sdc.Mode, len(clique))
		for i, m := range clique {
			group[i] = p.Modes[m]
		}
		nm, err := core.NaiveMerge(cx, p.Graph, group, opt)
		if err != nil {
			return AblationRow{}, err
		}
		naiveModes = append(naiveModes, nm)
	}
	_, indWorst, err := staAll(cx, p.Graph, p.Modes, staOpt)
	if err != nil {
		return AblationRow{}, err
	}
	_, graphWorst, err := staAll(cx, p.Graph, mr.Merged, staOpt)
	if err != nil {
		return AblationRow{}, err
	}
	_, naiveWorst, err := staAll(cx, p.Graph, naiveModes, staOpt)
	if err != nil {
		return AblationRow{}, err
	}
	graphConf, _ := Conformity(indWorst, graphWorst)
	naiveConf, _ := Conformity(indWorst, naiveWorst)
	fps := 0
	for _, rep := range mr.Reports {
		fps += rep.AddedFalsePaths + rep.LaunchBlocks
	}
	return AblationRow{
		Design:          p.Case.Label,
		GraphConformity: graphConf,
		NaiveConformity: naiveConf,
		GraphFalsePaths: fps,
	}, nil
}

// Figure2Demo builds a 9-mode family with the compatibility structure of
// the paper's Figure 2 mergeability graph (three cliques) and returns the
// analysis.
func Figure2Demo() (*core.Mergeability, [][]int, error) {
	spec := gen.DesignSpec{Name: "fig2", Seed: 2, Domains: 2, BlocksPerDomain: 2,
		Stages: 2, RegsPerStage: 4, CloudDepth: 2, CrossPaths: 2}
	g, err := gen.Generate(spec)
	if err != nil {
		return nil, nil, err
	}
	tg, err := graph.Build(g.Design)
	if err != nil {
		return nil, nil, err
	}
	family := gen.FamilySpec{Groups: 3, ModesPerGroup: []int{4, 3, 2}, BasePeriod: 2}
	var modes []*sdc.Mode
	for _, ms := range g.Modes(family) {
		mode, _, err := sdc.Parse(ms.Name, ms.Text, g.Design)
		if err != nil {
			return nil, nil, err
		}
		modes = append(modes, mode)
	}
	mb, err := core.AnalyzeMergeability(tg, modes, core.Options{})
	if err != nil {
		return nil, nil, err
	}
	return mb, mb.Cliques(), nil
}
