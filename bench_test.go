// Package modemerge's root benchmark suite regenerates every table and
// figure of the paper (see EXPERIMENTS.md for the index):
//
//	go test -bench . -benchmem
//
// Table 5 / Table 6 benches run the full merge / STA campaigns per design
// (A–F); set MODEMERGE_BENCH_SCALE to grow or shrink the synthetic
// designs.
package modemerge

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"modemerge/internal/core"
	"modemerge/internal/experiments"
	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/sdc"
	"modemerge/internal/sta"
)

func benchScale() float64 {
	if s := os.Getenv("MODEMERGE_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 1
}

// ---------- shared fixtures ----------

var (
	fixMu    sync.Mutex
	prepared = map[string]*experiments.Prepared{}
	mergedRe = map[string]*experiments.MergeResult{}
)

func preparedDesign(b *testing.B, label string) *experiments.Prepared {
	b.Helper()
	fixMu.Lock()
	defer fixMu.Unlock()
	if p, ok := prepared[label]; ok {
		return p
	}
	for _, c := range experiments.PaperDesigns(benchScale()) {
		if c.Label == label {
			p, err := experiments.Prepare(c)
			if err != nil {
				b.Fatal(err)
			}
			prepared[label] = p
			return p
		}
	}
	b.Fatalf("no design %q", label)
	return nil
}

func mergedDesign(b *testing.B, label string) *experiments.MergeResult {
	b.Helper()
	p := preparedDesign(b, label)
	fixMu.Lock()
	defer fixMu.Unlock()
	if mr, ok := mergedRe[label]; ok {
		return mr
	}
	mr, err := experiments.RunTable5(context.Background(), p, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	mergedRe[label] = mr
	return mr
}

// ---------- Table 1 / Figure 1: relations on the example circuit ----------

// BenchmarkTable1Relations measures the timing-relationship computation
// that fills Table 1 (Constraint Set 1 on the Figure 1 circuit).
func BenchmarkTable1Relations(b *testing.B) {
	d := gen.PaperCircuit()
	g, err := graph.Build(d)
	if err != nil {
		b.Fatal(err)
	}
	mode, _, err := sdc.Parse("set1", `
create_clock -name clkA -period 10 [get_ports clk1]
set_multicycle_path 2 -through [get_pins inv1/Z]
set_false_path -through [get_pins and1/Z]
`, d)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, err := sta.NewContext(g, mode, sta.Options{})
		if err != nil {
			b.Fatal(err)
		}
		rels := ctx.EndpointRelations(context.Background())
		if len(rels) == 0 {
			b.Fatal("no relations")
		}
	}
}

// ---------- Figure 2: mergeability graph and cliques ----------

func BenchmarkFig2Cliques(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mb, cliques, err := experiments.Figure2Demo()
		if err != nil {
			b.Fatal(err)
		}
		if len(cliques) != 3 {
			b.Fatalf("cliques = %v", mb.GroupNames(cliques))
		}
	}
}

// ---------- Tables 2–4: the 3-pass algorithm on Constraint Set 6 ----------

func BenchmarkThreePass(b *testing.B) {
	d := gen.PaperCircuit()
	modeA, _, err := sdc.Parse("A", `
create_clock -p 10 -name clkA [get_ports clk1]
set_false_path -to rX/D
set_false_path -to rY/D
set_false_path -through inv3/Z
`, d)
	if err != nil {
		b.Fatal(err)
	}
	modeB, _, err := sdc.Parse("B", `
create_clock -p 10 -name clkA [get_ports clk1]
set_false_path -from rA/CP
set_false_path -to rZ/D
`, d)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merged, _, err := core.Merge(context.Background(), d, []*sdc.Mode{modeA, modeB}, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(merged.Exceptions) < 3 {
			b.Fatal("refinement did not produce the Set-6 false paths")
		}
	}
}

// ---------- Table 5: mode merging per design ----------

func benchTable5(b *testing.B, label string) {
	p := preparedDesign(b, label)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mr, err := experiments.RunTable5(context.Background(), p, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(mr.Row.Individual), "modes")
		b.ReportMetric(float64(mr.Row.Merged), "merged")
		b.ReportMetric(mr.Row.ReductionPct, "%reduction")
	}
}

func BenchmarkTable5_DesignA(b *testing.B) { benchTable5(b, "A") }
func BenchmarkTable5_DesignB(b *testing.B) { benchTable5(b, "B") }
func BenchmarkTable5_DesignC(b *testing.B) { benchTable5(b, "C") }
func BenchmarkTable5_DesignD(b *testing.B) { benchTable5(b, "D") }
func BenchmarkTable5_DesignE(b *testing.B) { benchTable5(b, "E") }
func BenchmarkTable5_DesignF(b *testing.B) { benchTable5(b, "F") }

// ---------- Table 6: STA with individual vs merged modes ----------

func staCampaign(b *testing.B, g *graph.Graph, modes []*sdc.Mode) {
	b.Helper()
	for _, m := range modes {
		ctx, err := sta.NewContext(g, m, sta.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ctx.AnalyzeEndpoints(context.Background())
	}
}

func benchTable6(b *testing.B, label string, merged bool) {
	mr := mergedDesign(b, label)
	modes := mr.Prepared.Modes
	if merged {
		modes = mr.Merged
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		staCampaign(b, mr.Prepared.Graph, modes)
	}
	b.ReportMetric(float64(len(modes)), "modes")
}

func BenchmarkTable6_STA_Individual_DesignA(b *testing.B) { benchTable6(b, "A", false) }
func BenchmarkTable6_STA_Merged_DesignA(b *testing.B)     { benchTable6(b, "A", true) }
func BenchmarkTable6_STA_Individual_DesignB(b *testing.B) { benchTable6(b, "B", false) }
func BenchmarkTable6_STA_Merged_DesignB(b *testing.B)     { benchTable6(b, "B", true) }
func BenchmarkTable6_STA_Individual_DesignC(b *testing.B) { benchTable6(b, "C", false) }
func BenchmarkTable6_STA_Merged_DesignC(b *testing.B)     { benchTable6(b, "C", true) }
func BenchmarkTable6_STA_Individual_DesignD(b *testing.B) { benchTable6(b, "D", false) }
func BenchmarkTable6_STA_Merged_DesignD(b *testing.B)     { benchTable6(b, "D", true) }
func BenchmarkTable6_STA_Individual_DesignE(b *testing.B) { benchTable6(b, "E", false) }
func BenchmarkTable6_STA_Merged_DesignE(b *testing.B)     { benchTable6(b, "E", true) }
func BenchmarkTable6_STA_Individual_DesignF(b *testing.B) { benchTable6(b, "F", false) }
func BenchmarkTable6_STA_Merged_DesignF(b *testing.B)     { benchTable6(b, "F", true) }

// ---------- Ablation: naive textual merge vs graph-based merge ----------

func BenchmarkNaiveVsGraphMerge(b *testing.B) {
	mr := mergedDesign(b, "B")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunNaiveAblation(context.Background(), mr, core.Options{}, sta.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.GraphConformity, "%conf-graph")
		b.ReportMetric(row.NaiveConformity, "%conf-naive")
	}
}

// ---------- Ablation: worker scaling (the paper's 4-core machine) ----------

func benchWorkers(b *testing.B, workers int) {
	mr := mergedDesign(b, "E")
	g := mr.Prepared.Graph
	mode := mr.Merged[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, err := sta.NewContext(g, mode, sta.Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		ctx.AnalyzeEndpoints(context.Background())
	}
}

func BenchmarkMergedSTAWorkers1(b *testing.B) { benchWorkers(b, 1) }
func BenchmarkMergedSTAWorkers2(b *testing.B) { benchWorkers(b, 2) }
func BenchmarkMergedSTAWorkers4(b *testing.B) { benchWorkers(b, 4) }
func BenchmarkMergedSTAWorkers8(b *testing.B) { benchWorkers(b, 8) }

// ---------- sanity: the bench fixtures reproduce the paper's shape ----------

// TestPaperShape asserts the headline claims on the bench designs: mode
// count drops by roughly two thirds, merged STA is never slower than the
// individual campaign by more than noise, and conformity stays above 99%.
func TestPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign; skipped with -short")
	}
	totalRed, totalConf := 0.0, 0.0
	n := 0
	for _, c := range experiments.PaperDesigns(0.5) {
		p, err := experiments.Prepare(c)
		if err != nil {
			t.Fatal(err)
		}
		mr, err := experiments.RunTable5(context.Background(), p, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if mr.Row.Merged != c.PaperMerged {
			t.Errorf("design %s: merged modes = %d, paper structure expects %d",
				c.Label, mr.Row.Merged, c.PaperMerged)
		}
		row6, err := experiments.RunTable6(context.Background(), mr, sta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if row6.ConformityPct < 99 {
			t.Errorf("design %s: conformity %.2f%% < 99%%", c.Label, row6.ConformityPct)
		}
		totalRed += mr.Row.ReductionPct
		totalConf += row6.ConformityPct
		n++
	}
	avgRed := totalRed / float64(n)
	if avgRed < 55 || avgRed > 80 {
		t.Errorf("average mode reduction %.1f%% far from the paper's 67.5%%", avgRed)
	}
	avgConf := totalConf / float64(n)
	if avgConf < 99 {
		t.Errorf("average conformity %.2f%% below the paper's 99.82%%", avgConf)
	}
	fmt.Printf("paper shape: avg mode reduction %.1f%% (paper 67.5%%), avg conformity %.2f%% (paper 99.82%%)\n",
		avgRed, avgConf)
}

// TestMergedNeverOptimistic validates every bench design's merged modes
// with the equivalence checker — the correct-by-construction claim.
func TestMergedNeverOptimistic(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign; skipped with -short")
	}
	for _, c := range experiments.PaperDesigns(0.3) {
		if c.Label == "A" {
			continue // 95 modes; covered by the structure via B..F
		}
		p, err := experiments.Prepare(c)
		if err != nil {
			t.Fatal(err)
		}
		mr, err := experiments.RunTable5(context.Background(), p, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cliques := mr.Mb.Cliques()
		for ci, clique := range cliques {
			if len(clique) < 2 {
				continue
			}
			group := make([]*sdc.Mode, len(clique))
			for i, mi := range clique {
				group[i] = p.Modes[mi]
			}
			res, err := core.CheckEquivalence(context.Background(), p.Graph, group, mr.Merged[ci], core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Equivalent() {
				t.Errorf("design %s merged mode %s is optimistic:\n  %v",
					c.Label, mr.Merged[ci].Name, res.OptimisticMismatches)
			}
		}
	}
}
