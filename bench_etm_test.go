// ETM benchmark harness: measures interface-timing-model extraction cost
// and hierarchical-vs-flat merge wall time over three hierarchical design
// sizes. The datapoints feed the "hierarchical" section of
// BENCH_modemerge.json (see bench_obs_test.go / TestWriteBenchArtifact).
package modemerge

import (
	"context"
	"testing"

	"modemerge/internal/benchfmt"
	"modemerge/internal/core"
	"modemerge/internal/etm"
	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/netlist"
	"modemerge/internal/sdc"
)

type hierBenchSize struct {
	Name  string
	HSpec gen.HierSpec
	FSpec gen.FamilySpec
}

func hierBenchSizes() []hierBenchSize {
	family := gen.FamilySpec{Groups: 1, ModesPerGroup: []int{3}, BasePeriod: 2}
	return []hierBenchSize{
		{"small", gen.HierSpec{Name: "etm_s", Seed: 21, Domains: 1, BlocksPerDomain: 2,
			Stages: 2, RegsPerStage: 2, CloudDepth: 1, CrossPaths: 0, IOPairs: 2}, family},
		{"medium", gen.HierSpec{Name: "etm_m", Seed: 22, Domains: 2, BlocksPerDomain: 2,
			Stages: 3, RegsPerStage: 3, CloudDepth: 2, CrossPaths: 2, IOPairs: 2}, family},
		{"large", gen.HierSpec{Name: "etm_l", Seed: 23, Domains: 3, BlocksPerDomain: 2,
			Stages: 4, RegsPerStage: 4, CloudDepth: 3, CrossPaths: 3, IOPairs: 3}, family},
	}
}

func hierBenchFixture(tb testing.TB, s hierBenchSize) (*graph.Graph, *netlist.HierDesign, []*sdc.Mode) {
	tb.Helper()
	hg, err := gen.GenerateHier(s.HSpec)
	if err != nil {
		tb.Fatal(err)
	}
	g, err := graph.Build(hg.Design)
	if err != nil {
		tb.Fatal(err)
	}
	var modes []*sdc.Mode
	for _, m := range hg.Modes(s.FSpec) {
		mode, _, err := sdc.Parse(m.Name, m.Text, g.Design)
		if err != nil {
			tb.Fatalf("mode %s: %v", m.Name, err)
		}
		modes = append(modes, mode)
	}
	return g, hg.Hier, modes
}

// extractAllModels builds and extracts the interface timing model of
// every distinct block master — the per-master work the hierarchical
// merge amortizes across block instances (and across merges, via the
// content-addressed etm cache granularity).
func extractAllModels(tb testing.TB, hier *netlist.HierDesign) int {
	tb.Helper()
	n := 0
	for _, master := range hier.Masters() {
		mg, err := graph.Build(master)
		if err != nil {
			tb.Fatal(err)
		}
		if _, err := etm.Extract(mg); err != nil {
			tb.Fatal(err)
		}
		n++
	}
	return n
}

func hierMergeOnce(tb testing.TB, g *graph.Graph, hier *netlist.HierDesign, modes []*sdc.Mode) {
	tb.Helper()
	if _, _, _, err := core.MergeAll(context.Background(), g, modes, core.Options{Hierarchical: hier}); err != nil {
		tb.Fatal(err)
	}
}

func flatMergeOnce(tb testing.TB, g *graph.Graph, modes []*sdc.Mode) {
	tb.Helper()
	if _, _, _, err := core.MergeAll(context.Background(), g, modes, core.Options{}); err != nil {
		tb.Fatal(err)
	}
}

func benchETMExtract(b *testing.B, s hierBenchSize) {
	_, hier, _ := hierBenchFixture(b, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		extractAllModels(b, hier)
	}
}

func benchHierMerge(b *testing.B, s hierBenchSize, hierarchical bool) {
	g, hier, modes := hierBenchFixture(b, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hierarchical {
			hierMergeOnce(b, g, hier, modes)
		} else {
			flatMergeOnce(b, g, modes)
		}
	}
}

func BenchmarkETMExtractSmall(b *testing.B)  { benchETMExtract(b, hierBenchSizes()[0]) }
func BenchmarkETMExtractMedium(b *testing.B) { benchETMExtract(b, hierBenchSizes()[1]) }
func BenchmarkETMExtractLarge(b *testing.B)  { benchETMExtract(b, hierBenchSizes()[2]) }

func BenchmarkHierMergeSmall(b *testing.B)  { benchHierMerge(b, hierBenchSizes()[0], true) }
func BenchmarkHierMergeMedium(b *testing.B) { benchHierMerge(b, hierBenchSizes()[1], true) }
func BenchmarkHierMergeLarge(b *testing.B)  { benchHierMerge(b, hierBenchSizes()[2], true) }

func BenchmarkFlatMergeOnHierSmall(b *testing.B)  { benchHierMerge(b, hierBenchSizes()[0], false) }
func BenchmarkFlatMergeOnHierMedium(b *testing.B) { benchHierMerge(b, hierBenchSizes()[1], false) }
func BenchmarkFlatMergeOnHierLarge(b *testing.B)  { benchHierMerge(b, hierBenchSizes()[2], false) }

// measureHierarchical produces the artifact's hierarchical section
// (benchfmt.HierEntry — per-master ETM extraction cost plus
// hierarchical and flat merge wall time on the same flattened design).
func measureHierarchical(t *testing.T) []benchfmt.HierEntry {
	t.Helper()
	var out []benchfmt.HierEntry
	for _, s := range hierBenchSizes() {
		g, hier, modes := hierBenchFixture(t, s)
		extractRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				extractAllModels(b, hier)
			}
		})
		flatRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				flatMergeOnce(b, g, modes)
			}
		})
		hierRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hierMergeOnce(b, g, hier, modes)
			}
		})
		ratio := 0.0
		if flat := flatRes.NsPerOp(); flat > 0 {
			ratio = float64(hierRes.NsPerOp()) / float64(flat)
		}
		out = append(out, benchfmt.HierEntry{
			Design:         s.Name,
			Cells:          g.Design.Stats().Cells,
			Blocks:         len(hier.Blocks),
			Masters:        len(hier.Masters()),
			Modes:          len(modes),
			ExtractNsPerOp: extractRes.NsPerOp(),
			FlatNsPerOp:    flatRes.NsPerOp(),
			HierNsPerOp:    hierRes.NsPerOp(),
			HierVsFlat:     ratio,
		})
		t.Logf("hier %s: extract %d ns/op, flat %d ns/op, hier %d ns/op (%.2fx flat)",
			s.Name, extractRes.NsPerOp(), flatRes.NsPerOp(), hierRes.NsPerOp(), ratio)
	}
	return out
}
