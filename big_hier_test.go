// Million-cell acceptance: a >= 1M-cell hierarchical design must
// complete a full mode merge through the ETM path. Flat refinement is
// not required to complete at this size — that asymmetry is the point
// of hierarchical merging — so the flat engine is not exercised here.
// Gated behind MODEMERGE_BIG_TEST=1: the run allocates several GB and
// takes minutes, so plain `go test ./...` skips it.
//
//	MODEMERGE_BIG_TEST=1 go test . -run TestMillionCellHierarchicalMerge -count=1 -v -timeout 60m
package modemerge

import (
	"context"
	"os"
	"testing"
	"time"

	"modemerge/internal/core"
	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/sdc"
)

func TestMillionCellHierarchicalMerge(t *testing.T) {
	if os.Getenv("MODEMERGE_BIG_TEST") == "" {
		t.Skip("MODEMERGE_BIG_TEST not set; skipping million-cell acceptance run")
	}
	// 8 domains x 11 blocks of a ~12k-cell master ≈ 1.05M cells flattened.
	spec := gen.HierSpec{Name: "big", Seed: 1, Domains: 8, BlocksPerDomain: 11,
		Stages: 50, RegsPerStage: 40, CloudDepth: 4, CrossPaths: 8, IOPairs: 4}
	start := time.Now()
	hg, err := gen.GenerateHier(spec)
	if err != nil {
		t.Fatal(err)
	}
	cells := hg.Design.Stats().Cells
	t.Logf("generated %d cells (%d blocks) in %v", cells, len(hg.Hier.Blocks), time.Since(start))
	if cells < 1_000_000 {
		t.Fatalf("fixture too small: %d cells < 1M", cells)
	}

	start = time.Now()
	g, err := graph.Build(hg.Design)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("built flat graph in %v", time.Since(start))

	var modes []*sdc.Mode
	for _, m := range hg.Modes(gen.FamilySpec{Groups: 1, ModesPerGroup: []int{2}, BasePeriod: 2}) {
		mode, _, err := sdc.Parse(m.Name, m.Text, g.Design)
		if err != nil {
			t.Fatalf("mode %s: %v", m.Name, err)
		}
		modes = append(modes, mode)
	}

	start = time.Now()
	merged, reports, mb, err := core.MergeAll(context.Background(), g, modes,
		core.Options{Hierarchical: hg.Hier})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hierarchical merge of %d modes -> %d merged in %v", len(modes), len(merged), time.Since(start))

	sawHier := false
	for i, clique := range mb.Cliques() {
		if len(clique) < 2 {
			continue
		}
		rep := reports[i]
		t.Logf("clique %d: blocks merged=%d skipped=%d harvested exceptions=%d",
			i, rep.HierBlocksMerged, rep.HierBlocksSkipped, rep.HarvestedExceptions)
		if rep.HierBlocksMerged > 0 {
			sawHier = true
		}
	}
	if !sawHier {
		t.Fatal("no multi-mode clique took the per-block ETM path")
	}
}
