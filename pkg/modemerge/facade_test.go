package modemerge_test

import (
	"context"
	"strings"
	"testing"

	"modemerge/internal/gen"
	"modemerge/internal/netlist"
	"modemerge/pkg/modemerge"
)

// fixture builds a small multi-group design + mode family through the
// public facade only (Verilog text in, modes parsed against the design).
func fixture(t *testing.T) (*modemerge.Design, []*modemerge.Mode) {
	t.Helper()
	gd, err := gen.Generate(gen.DesignSpec{Name: "facade", Seed: 71, Domains: 2,
		BlocksPerDomain: 1, Stages: 2, RegsPerStage: 2, CloudDepth: 1, CrossPaths: 1, IOPairs: 1})
	if err != nil {
		t.Fatal(err)
	}
	design, err := modemerge.LoadDesign(netlist.WriteVerilog(gd.Design), "", "facade")
	if err != nil {
		t.Fatal(err)
	}
	var modes []*modemerge.Mode
	for _, ms := range gd.Modes(gen.FamilySpec{Groups: 2, ModesPerGroup: []int{2, 2}, BasePeriod: 2}) {
		m, _, err := design.ParseMode(ms.Name, ms.Text)
		if err != nil {
			t.Fatalf("mode %s: %v", ms.Name, err)
		}
		modes = append(modes, m)
	}
	return design, modes
}

func TestFacadeMergeAll(t *testing.T) {
	design, modes := fixture(t)
	if design.Name() != "facade" {
		t.Fatalf("Name() = %q", design.Name())
	}
	if s := design.Stats(); s.Cells == 0 || s.Ports == 0 {
		t.Fatalf("empty design stats: %+v", s)
	}
	merged, reports, mb, err := modemerge.MergeAll(context.Background(), design, modes, modemerge.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(reports) {
		t.Fatalf("%d merged modes but %d reports", len(merged), len(reports))
	}
	cliques := mb.Cliques()
	if len(merged) != len(cliques) {
		t.Fatalf("%d merged modes for %d cliques", len(merged), len(cliques))
	}
	// Two non-mergeable groups must not collapse into one merged mode.
	if len(merged) < 2 || len(merged) >= len(modes) {
		t.Fatalf("expected 2..%d merged modes, got %d", len(modes)-1, len(merged))
	}
	if txt := modemerge.FormatMergeability(mb, cliques); !strings.Contains(txt, "clique") {
		t.Errorf("FormatMergeability output looks empty:\n%s", txt)
	}
	for i, m := range merged {
		if modemerge.WriteSDC(m) == "" {
			t.Errorf("merged mode %d renders empty", i)
		}
	}
	// Every multi-member clique must validate as a sign-off-safe superset.
	for ci, clique := range cliques {
		if len(clique) < 2 {
			continue
		}
		var group []*modemerge.Mode
		for _, mi := range clique {
			group = append(group, modes[mi])
		}
		res, err := modemerge.CheckEquivalence(context.Background(), design, group, merged[ci], modemerge.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent() {
			t.Errorf("merged mode %s relaxes its members: %s", merged[ci].Name, res)
		}
	}
}

func TestFacadeCacheReuse(t *testing.T) {
	design, modes := fixture(t)
	cache := modemerge.NewCache(0)
	if err := cache.WithDisk(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	opt := modemerge.Options{Cache: cache}
	cold, _, _, err := modemerge.MergeAll(context.Background(), design, modes, opt)
	if err != nil {
		t.Fatal(err)
	}
	warm, _, _, err := modemerge.MergeAll(context.Background(), design, modes, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold) != len(warm) {
		t.Fatalf("cold %d vs warm %d merged modes", len(cold), len(warm))
	}
	for i := range cold {
		if modemerge.WriteSDC(cold[i]) != modemerge.WriteSDC(warm[i]) {
			t.Errorf("warm merge %d differs from cold", i)
		}
	}
	// A pure replay hits at the pair and clique levels; the clique hit
	// short-circuits the merge, so per-mode contexts are never rebuilt
	// (and never even looked up) on the warm pass.
	st := cache.Stats()
	if st.CliqueHits == 0 || st.PairHits == 0 {
		t.Errorf("warm replay produced no cache hits: %+v", st)
	}
}

func TestFacadeSingleCliqueMerge(t *testing.T) {
	design, modes := fixture(t)
	mb, err := modemerge.AnalyzeMergeability(design, modes, modemerge.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, clique := range mb.Cliques() {
		if len(clique) < 2 {
			continue
		}
		var group []*modemerge.Mode
		for _, mi := range clique {
			group = append(group, modes[mi])
		}
		merged, report, err := modemerge.Merge(context.Background(), design, group, modemerge.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if merged == nil || report == nil {
			t.Fatal("Merge returned nil mode or report")
		}
		if exp := report.Explain(merged.Name); exp.Text() == "" {
			t.Error("empty explain report")
		}
		return
	}
	t.Fatal("fixture produced no multi-member clique")
}

// hierFixture loads the same structural design hierarchically, through
// the public facade's Verilog round trip.
func hierFixture(t *testing.T) (*modemerge.Design, []*modemerge.Mode) {
	t.Helper()
	hg, err := gen.GenerateHier(gen.HierSpec{Name: "hfacade", Seed: 71, Domains: 2,
		BlocksPerDomain: 1, Stages: 2, RegsPerStage: 2, CloudDepth: 1, CrossPaths: 1, IOPairs: 1})
	if err != nil {
		t.Fatal(err)
	}
	design, err := modemerge.LoadHierDesign(netlist.WriteVerilogHier(hg.Hier), "", "hfacade")
	if err != nil {
		t.Fatal(err)
	}
	if !design.Hierarchical() {
		t.Fatal("LoadHierDesign did not keep the hierarchy")
	}
	var modes []*modemerge.Mode
	for _, ms := range hg.Modes(gen.FamilySpec{Groups: 2, ModesPerGroup: []int{2, 2}, BasePeriod: 2}) {
		m, _, err := design.ParseMode(ms.Name, ms.Text)
		if err != nil {
			t.Fatalf("mode %s: %v", ms.Name, err)
		}
		modes = append(modes, m)
	}
	return design, modes
}

func TestFacadeHierarchicalMerge(t *testing.T) {
	design, modes := hierFixture(t)
	merged, _, mb, err := modemerge.MergeAll(context.Background(), design, modes,
		modemerge.Options{Hierarchical: true})
	if err != nil {
		t.Fatal(err)
	}
	for ci, clique := range mb.Cliques() {
		if len(clique) < 2 {
			continue
		}
		var group []*modemerge.Mode
		for _, mi := range clique {
			group = append(group, modes[mi])
		}
		res, err := modemerge.CheckEquivalence(context.Background(), design, group, merged[ci], modemerge.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent() {
			t.Errorf("hierarchical merged mode %s relaxes its members: %s", merged[ci].Name, res)
		}
	}
}

func TestFacadeHierarchicalRequiresHierDesign(t *testing.T) {
	design, modes := fixture(t)
	if design.Hierarchical() {
		t.Fatal("flat design reports Hierarchical")
	}
	if _, _, _, err := modemerge.MergeAll(context.Background(), design, modes,
		modemerge.Options{Hierarchical: true}); err == nil {
		t.Fatal("Options.Hierarchical on a flat design must error")
	}
}

// TestFacadeCornerMatrix drives a multi-corner scenario-matrix merge
// through the public facade: the merge must succeed, report its corner
// axis as provenance, validate corner-aware, and — with a single neutral
// corner — produce byte-identical output to the corner-less merge.
func TestFacadeCornerMatrix(t *testing.T) {
	design, modes := fixture(t)
	corners := []modemerge.Corner{
		{Name: "tc"},
		{Name: "wc", DelayScale: 1.15, LateScale: 1.05, MarginScale: 1.2},
	}
	if err := modemerge.ValidateCorners(corners); err != nil {
		t.Fatal(err)
	}

	opt := modemerge.Options{Corners: corners}
	merged, reports, mb, err := modemerge.MergeAll(context.Background(), design, modes, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reports {
		if len(mb.Cliques()[i]) < 2 {
			continue
		}
		if len(rep.Corners) != len(corners) {
			t.Errorf("report %d corners = %v, want both corner names", i, rep.Corners)
		}
	}
	// Corner-aware standalone validation: the merged mode must not relax
	// any member in any corner (the merger flattens modes x corners).
	for ci, clique := range mb.Cliques() {
		if len(clique) < 2 {
			continue
		}
		var group []*modemerge.Mode
		for _, mi := range clique {
			group = append(group, modes[mi])
		}
		res, err := modemerge.CheckEquivalence(context.Background(), design, group, merged[ci], opt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent() {
			t.Errorf("corner-aware merged mode %s relaxes a member scenario: %s", merged[ci].Name, res)
		}
	}

	// A single neutral corner must degenerate to the corner-less merge.
	plain, _, _, err := modemerge.MergeAll(context.Background(), design, modes, modemerge.Options{})
	if err != nil {
		t.Fatal(err)
	}
	single, _, _, err := modemerge.MergeAll(context.Background(), design, modes,
		modemerge.Options{Corners: corners[:1]})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(single) {
		t.Fatalf("merged counts differ: %d corner-less vs %d single-corner", len(plain), len(single))
	}
	for i := range plain {
		if modemerge.WriteSDC(plain[i]) != modemerge.WriteSDC(single[i]) {
			t.Errorf("merged mode %d differs between corner-less and single-neutral-corner merges", i)
		}
	}
}

// TestFacadeCornersRejectHierarchical pins the documented incompatibility
// at the facade boundary.
func TestFacadeCornersRejectHierarchical(t *testing.T) {
	design, modes := hierFixture(t)
	_, _, _, err := modemerge.MergeAll(context.Background(), design, modes,
		modemerge.Options{Hierarchical: true, Corners: []modemerge.Corner{{Name: "tc"}}})
	if err == nil {
		t.Fatal("Corners + Hierarchical must error")
	}
}
