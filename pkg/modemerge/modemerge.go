// Package modemerge is the stable public Go API of the timing-graph
// based mode-merging flow (DAC 2015, "A timing graph based approach to
// mode merging"). It wraps the internal packages behind a small, stable
// surface:
//
//	design, err := modemerge.LoadDesign(verilogSrc, librarySrc, "")
//	modeA, _, err := design.ParseMode("func", funcSDC)
//	modeB, _, err := design.ParseMode("scan", scanSDC)
//	merged, reports, mb, err := modemerge.MergeAll(ctx, design,
//	        []*modemerge.Mode{modeA, modeB}, modemerge.Options{})
//
// Merged modes render back to SDC text with WriteSDC; per-merge
// provenance is available as an explain report via Report.Explain. The
// equivalence checker (CheckEquivalence) verifies a merged mode never
// relaxes its member modes — the paper's correct-by-construction
// validation, also usable standalone.
//
// Hierarchical merging: load a block-structured netlist with
// LoadHierDesign and set Options.Hierarchical — merges then refine per
// block through extracted timing models (never optimistic relative to
// the flat merge) and scale to designs too large for flat refinement.
//
// Incremental re-merging: give Options a Cache (NewCache) and repeated
// merges reuse per-mode analysis contexts, pairwise mergeability
// verdicts and whole-clique artifacts keyed by content address — editing
// one mode of N re-runs only that mode's share of the work, with results
// proven byte-identical to cold merges.
//
// This package's exported surface is covered by a golden API snapshot
// (api.golden); changes that remove or alter existing declarations fail
// CI and require a deliberate snapshot update.
package modemerge

import (
	"context"
	"fmt"

	"modemerge/internal/core"
	"modemerge/internal/graph"
	"modemerge/internal/incr"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
	"modemerge/internal/obs"
	"modemerge/internal/sdc"
)

// Mode is one parsed SDC constraint mode, bound to a design. Construct
// with Design.ParseMode; render with WriteSDC.
type Mode = sdc.Mode

// Report counts what one merge did (dropped/uniquified exceptions,
// refinement insertions, validation outcome) and carries the provenance
// records behind Report.Explain.
type Report = core.Report

// Explain is the structured explain report of one merged mode: one
// record per constraint decision. Render with Explain.Text or marshal to
// JSON.
type Explain = obs.Explain

// EquivalenceResult is the timing-relationship comparison between a
// merged mode and its member modes (see CheckEquivalence).
type EquivalenceResult = core.EquivalenceResult

// Conflict names a non-mergeable mode pair and the first conflicting
// constraint that separates them.
type Conflict = core.NonMergeable

// Mergeability is the pairwise mergeability graph over the input modes;
// Cliques partitions it into merge groups.
type Mergeability = core.Mergeability

// Corner is one operating corner of a multi-corner multi-mode scenario
// matrix: per-corner delay/margin derate factors plus an optional SDC
// overlay appended to every mode deployed in the corner. The zero
// factors mean 1.0, so Corner{Name: "tc"} is a neutral corner. Validate
// a set with ValidateCorners before merging.
type Corner = library.Corner

// ValidateCorners checks a corner set for merge use: every corner
// named, names unique.
func ValidateCorners(corners []Corner) error {
	return library.ValidateCorners(corners)
}

// CacheStats reports incremental-cache hits and misses per granularity.
type CacheStats = incr.StatsSnapshot

// DesignStats summarizes a loaded design's size.
type DesignStats = netlist.Stats

// Design is a loaded gate-level design: parsed cell library, elaborated
// netlist and built timing graph, immutable and safe for concurrent use.
// Designs loaded with LoadHierDesign additionally keep their block
// hierarchy, enabling Options.Hierarchical merging.
type Design struct {
	graph    *graph.Graph
	hier     *netlist.HierDesign
	warnings []string
}

// LoadDesign parses a structural Verilog netlist against a cell library
// (mini library format; empty selects the built-in library), validates
// it and builds the timing graph. top selects the top module; empty
// infers it.
func LoadDesign(verilog, librarySrc, top string) (*Design, error) {
	lib := library.Default()
	if librarySrc != "" {
		parsed, err := library.Parse(librarySrc)
		if err != nil {
			return nil, fmt.Errorf("library: %w", err)
		}
		lib = parsed
	}
	design, err := netlist.ParseVerilog(verilog, lib, top)
	if err != nil {
		return nil, fmt.Errorf("verilog: %w", err)
	}
	warnings, err := design.Validate()
	if err != nil {
		return nil, fmt.Errorf("design: %w", err)
	}
	g, err := graph.Build(design)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	return &Design{graph: g, warnings: warnings}, nil
}

// LoadHierDesign parses hierarchical structural Verilog (a top module
// instantiating block modules), flattens it for timing analysis, and
// keeps the block hierarchy so merges can run per-block through
// extracted timing models (Options.Hierarchical). Modes are parsed and
// merged against the flattened design; merged output references
// flattened (block-prefixed) names exactly like LoadDesign.
func LoadHierDesign(verilog, librarySrc, top string) (*Design, error) {
	lib := library.Default()
	if librarySrc != "" {
		parsed, err := library.Parse(librarySrc)
		if err != nil {
			return nil, fmt.Errorf("library: %w", err)
		}
		lib = parsed
	}
	hier, err := netlist.ParseVerilogHier(verilog, lib, top)
	if err != nil {
		return nil, fmt.Errorf("verilog: %w", err)
	}
	design, err := hier.Flatten()
	if err != nil {
		return nil, fmt.Errorf("flatten: %w", err)
	}
	warnings, err := design.Validate()
	if err != nil {
		return nil, fmt.Errorf("design: %w", err)
	}
	g, err := graph.Build(design)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	return &Design{graph: g, hier: hier, warnings: warnings}, nil
}

// Name returns the design's top module name.
func (d *Design) Name() string { return d.graph.Design.Name }

// Hierarchical reports whether the design kept a block hierarchy
// (loaded with LoadHierDesign) and can merge via extracted timing
// models.
func (d *Design) Hierarchical() bool { return d.hier != nil }

// Stats summarizes the design's size.
func (d *Design) Stats() DesignStats { return d.graph.Design.Stats() }

// Warnings lists non-fatal issues found while validating the design.
func (d *Design) Warnings() []string { return append([]string(nil), d.warnings...) }

// ParseMode parses SDC text into a mode named name, resolving object
// references against the design. ignored lists SDC commands the parser
// recognized but does not model (returned, not fatal).
func (d *Design) ParseMode(name, sdcText string) (mode *Mode, ignored []string, err error) {
	return sdc.Parse(name, sdcText, d.graph.Design)
}

// WriteSDC renders a mode back to canonical SDC text. The rendering is
// deterministic: semantically identical modes render byte-identically.
func WriteSDC(m *Mode) string { return sdc.Write(m) }

// Cache is an incremental re-merge cache shared across merges (and
// safely across goroutines). See the package comment and NewCache.
type Cache struct {
	c *incr.Cache
}

// NewCache creates an in-memory incremental cache bounded to capacity
// entries across all granularities (<= 0 selects the default, 4096).
func NewCache(capacity int) *Cache {
	return &Cache{c: incr.New(capacity)}
}

// BlobStore is a pluggable artifact backend for Cache (see
// Cache.WithStore): immutable, content-addressed blobs under
// (granularity, key). Implementations ship for local disk
// (NewDiskBlobStore), memory (NewMemBlobStore) and a remote blob
// service speaking the incr blob HTTP protocol (NewHTTPBlobStore) —
// the same interface the distributed merge fabric shares between
// coordinator and workers.
type BlobStore = incr.BlobStore

// NewMemBlobStore creates an in-memory blob store (tests, or sharing
// artifacts between caches of one process).
func NewMemBlobStore() BlobStore { return incr.NewMemStore() }

// NewDiskBlobStore creates (or reopens) a blob store rooted at dir.
func NewDiskBlobStore(dir string) (BlobStore, error) { return incr.NewDiskStore(dir) }

// NewHTTPBlobStore creates a client for a remote blob store at baseURL
// (an endpoint serving the incr blob protocol, e.g. a modemerged
// coordinator's /fabric/v1/blobs).
func NewHTTPBlobStore(baseURL string) BlobStore { return incr.NewHTTPStore(baseURL, nil) }

// WithStore attaches a blob store as the cache's write-through backend
// for the serializable granularities (pair verdicts and clique
// artifacts): puts publish, misses consult the store before re-merging.
// It returns c for chaining.
func (c *Cache) WithStore(s BlobStore) *Cache {
	c.c.WithStore(s)
	return c
}

// WithDisk persists the serializable cache granularities (pair verdicts
// and clique artifacts) under dir, so warm starts survive restarts. The
// directory is created if needed. It is shorthand for WithStore with a
// NewDiskBlobStore backend.
func (c *Cache) WithDisk(dir string) error {
	_, err := c.c.WithDisk(dir)
	return err
}

// Stats snapshots the cache's hit/miss counters.
func (c *Cache) Stats() CacheStats { return c.c.Stats().Snapshot() }

// Options tunes a merge. The zero value is a sensible default.
type Options struct {
	// Tolerance is the relative tolerance for merging clock-based and
	// drive/load constraint values across modes. Default 0.05.
	Tolerance float64
	// MergedName names the merged mode; default joins the member names
	// with "+".
	MergedName string
	// MaxRefineIterations bounds the refine→validate loop. Default 4.
	MaxRefineIterations int
	// Parallelism bounds the intra-merge worker pools. 0 uses all cores;
	// 1 forces the fully sequential path. Merged output is
	// byte-identical for every setting.
	Parallelism int
	// Workers bounds the per-mode timing-analysis worker pools (0 = all
	// cores). Like Parallelism, it never changes results.
	Workers int
	// Cache enables incremental re-merging (see NewCache). Nil disables
	// reuse.
	Cache *Cache
	// Hierarchical merges per block through extracted timing models
	// instead of refining the flat design monolithically: flat
	// preliminary merge and clock refinement, then per-block data
	// refinement on the block masters against projected member modes plus
	// an abstract top, stitched back under soundness guards. Requires a
	// design loaded with LoadHierDesign. The result is relation-
	// equivalent to the flat merge up to extra pessimism — never
	// optimistic — and scales to designs where flat refinement cannot
	// run.
	Hierarchical bool
	// Corners spans the merge over a multi-corner scenario matrix: a
	// clique merges only when it is mergeable in every corner, and
	// refinement targets the across-corner worst case, so the merged mode
	// deployed in any corner (its text plus the corner's overlay) is
	// never optimistic against any member in that corner. Empty keeps the
	// historical corner-less merge bit-for-bit. Incompatible with
	// Hierarchical.
	Corners []Corner
}

func (o Options) core() core.Options {
	opt := core.Options{
		Tolerance:           o.Tolerance,
		MergedName:          o.MergedName,
		MaxRefineIterations: o.MaxRefineIterations,
		Parallelism:         o.Parallelism,
		Corners:             o.Corners,
	}
	opt.STA.Workers = o.Workers
	if o.Cache != nil {
		opt.Cache = o.Cache.c
	}
	return opt
}

// coreFor additionally wires the design's block hierarchy into the
// merge options when Options.Hierarchical asks for it.
func (o Options) coreFor(d *Design) (core.Options, error) {
	opt := o.core()
	if o.Hierarchical {
		if d.hier == nil {
			return opt, fmt.Errorf("modemerge: Options.Hierarchical requires a design loaded with LoadHierDesign")
		}
		opt.Hierarchical = d.hier
	}
	return opt, nil
}

// Merge merges the modes (assumed mergeable; check with
// AnalyzeMergeability or use MergeAll) into one superset mode.
// Cancelling ctx aborts the merge.
func Merge(ctx context.Context, d *Design, modes []*Mode, opt Options) (*Mode, *Report, error) {
	copt, err := opt.coreFor(d)
	if err != nil {
		return nil, nil, err
	}
	return core.MergeWithGraph(ctx, d.graph, modes, copt)
}

// MergeAll analyzes pairwise mergeability, partitions the modes into
// merge cliques and merges each clique. It returns one merged mode and
// report per clique (singleton cliques pass the original mode through)
// plus the mergeability graph. Cancelling ctx aborts between and inside
// clique merges.
func MergeAll(ctx context.Context, d *Design, modes []*Mode, opt Options) ([]*Mode, []*Report, *Mergeability, error) {
	copt, err := opt.coreFor(d)
	if err != nil {
		return nil, nil, nil, err
	}
	return core.MergeAll(ctx, d.graph, modes, copt)
}

// AnalyzeMergeability runs only the pairwise mock-merge analysis and
// returns the mergeability graph, without merging anything.
func AnalyzeMergeability(d *Design, modes []*Mode, opt Options) (*Mergeability, error) {
	return core.AnalyzeMergeability(d.graph, modes, opt.core())
}

// FormatMergeability renders the mergeability graph and its merge
// cliques as human-readable text.
func FormatMergeability(mb *Mergeability, cliques [][]int) string {
	return core.FormatMergeability(mb, cliques)
}

// CheckEquivalence verifies the merged mode against its member modes on
// timing relationships: it must never relax any member (optimistic
// mismatches) and reports where it is merely tighter (pessimism,
// sign-off safe). Cancelling ctx aborts the comparison.
func CheckEquivalence(ctx context.Context, d *Design, individual []*Mode, merged *Mode, opt Options) (*EquivalenceResult, error) {
	return core.CheckEquivalence(ctx, d.graph, individual, merged, opt.core())
}
