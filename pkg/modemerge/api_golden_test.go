package modemerge

// The golden API-surface test: the exported surface of this package is
// a compatibility contract, so every exported declaration is rendered
// to a canonical one-line form and compared against testdata/api.golden.
// Removing or changing an existing declaration fails this test (and CI);
// intentional surface changes re-run with -update and commit the diff.

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/api.golden from the current API surface")

const goldenPath = "testdata/api.golden"

func TestAPISurfaceGolden(t *testing.T) {
	got := apiSurface(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden API snapshot (run go test -run APISurface -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("exported API surface changed; if intentional, re-run with -update and commit.\n%s",
			surfaceDiff(string(want), got))
	}
}

// apiSurface renders every exported declaration of the package in this
// directory as sorted, canonical one-line entries.
func apiSurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lines = append(lines, declSurface(fset, decl)...)
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

func declSurface(fset *token.FileSet, decl ast.Decl) []string {
	var lines []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		recv := ""
		if d.Recv != nil && len(d.Recv.List) == 1 {
			rt := exprString(fset, d.Recv.List[0].Type)
			// Methods on unexported receivers are not part of the surface.
			if !ast.IsExported(strings.TrimPrefix(rt, "*")) {
				return nil
			}
			recv = "(" + rt + ") "
		}
		sig := strings.TrimPrefix(exprString(fset, d.Type), "func")
		lines = append(lines, "func "+recv+d.Name.Name+sig)
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if sp.Name.IsExported() {
					lines = append(lines, typeSurface(fset, sp)...)
				}
			case *ast.ValueSpec:
				for _, name := range sp.Names {
					if !name.IsExported() {
						continue
					}
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					line := kind + " " + name.Name
					if sp.Type != nil {
						line += " " + exprString(fset, sp.Type)
					}
					lines = append(lines, line)
				}
			}
		}
	}
	return lines
}

// typeSurface renders one exported type. Structs contribute one line per
// exported field (unexported fields are implementation detail); aliases
// and other type definitions render their full right-hand side.
func typeSurface(fset *token.FileSet, sp *ast.TypeSpec) []string {
	eq := ""
	if sp.Assign.IsValid() {
		eq = "= "
	}
	st, isStruct := sp.Type.(*ast.StructType)
	if !isStruct || sp.Assign.IsValid() {
		return []string{"type " + sp.Name.Name + " " + eq + exprString(fset, sp.Type)}
	}
	lines := []string{"type " + sp.Name.Name + " struct"}
	for _, field := range st.Fields.List {
		ft := exprString(fset, field.Type)
		if len(field.Names) == 0 { // embedded
			if ast.IsExported(strings.TrimPrefix(ft, "*")) {
				lines = append(lines, "type "+sp.Name.Name+" struct: "+ft)
			}
			continue
		}
		for _, name := range field.Names {
			if name.IsExported() {
				lines = append(lines, "type "+sp.Name.Name+" struct: "+name.Name+" "+ft)
			}
		}
	}
	return lines
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return fmt.Sprintf("<print error: %v>", err)
	}
	// Canonicalize multi-line renderings (e.g. struct literals in
	// signatures) to one line so the golden file stays line-oriented.
	return strings.Join(strings.Fields(sb.String()), " ")
}

// surfaceDiff reports entries only in want (removed: breaking) and only
// in got (added: fine, but must be snapshotted).
func surfaceDiff(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(want), "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(got), "\n") {
		gotSet[l] = true
	}
	var sb strings.Builder
	for _, l := range sortedKeys(wantSet) {
		if !gotSet[l] {
			fmt.Fprintf(&sb, "  removed: %s\n", l)
		}
	}
	for _, l := range sortedKeys(gotSet) {
		if !wantSet[l] {
			fmt.Fprintf(&sb, "  added:   %s\n", l)
		}
	}
	if sb.Len() == 0 {
		return "  (ordering or formatting difference only)"
	}
	return sb.String()
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
