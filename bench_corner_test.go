// MCMM corner ablation: the same 4-mode family merged over scenario
// matrices of growing corner count. The corner axis multiplies the
// number of member analysis contexts (modes × corners, corner-major),
// so merge cost should scale roughly linearly in corners while the
// merged output stays corner-less. See EXPERIMENTS.md "Ablation 5".
package modemerge

import (
	"context"
	"testing"

	"modemerge/internal/core"
	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/sdc"
)

func benchCornerMatrix(b *testing.B, corners int) {
	gd, err := gen.Generate(gen.DesignSpec{
		Name: "corner_bench", Seed: 404, Domains: 2, BlocksPerDomain: 2,
		Stages: 2, RegsPerStage: 2, CloudDepth: 1, CrossPaths: 2, IOPairs: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.Build(gd.Design)
	if err != nil {
		b.Fatal(err)
	}
	family := gen.FamilySpec{Groups: 1, ModesPerGroup: []int{4}, BasePeriod: 2,
		FunctionalOnly: true, Corners: corners}
	var modes []*sdc.Mode
	for _, m := range gd.Modes(family) {
		mode, _, err := sdc.Parse(m.Name, m.Text, g.Design)
		if err != nil {
			b.Fatal(err)
		}
		modes = append(modes, mode)
	}
	opt := core.Options{Corners: gd.CornerSet(family)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.MergeWithGraph(context.Background(), g, modes, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCornerMatrixMergeC0(b *testing.B) { benchCornerMatrix(b, 0) }
func BenchmarkCornerMatrixMergeC1(b *testing.B) { benchCornerMatrix(b, 1) }
func BenchmarkCornerMatrixMergeC2(b *testing.B) { benchCornerMatrix(b, 2) }
func BenchmarkCornerMatrixMergeC4(b *testing.B) { benchCornerMatrix(b, 4) }
