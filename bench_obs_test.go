// Observability benchmark harness: measures the merge pipeline over three
// generated design sizes, with and without span tracing, and writes the
// machine-readable artifact BENCH_modemerge.json when MODEMERGE_BENCH_JSON
// names the output path:
//
//	MODEMERGE_BENCH_JSON=BENCH_modemerge.json go test . -run WriteBenchArtifact -count=1
//
// The artifact carries ns/op, allocs/op and the per-stage breakdown folded
// from the obs span totals, plus the tracing overhead in percent (the
// tentpole's ≤5% budget; reported, not gated — CI treats this step as
// non-gating because shared runners are noisy).
package modemerge

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"modemerge/internal/benchfmt"
	"modemerge/internal/core"
	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/incr"
	"modemerge/internal/obs"
	"modemerge/internal/sdc"
)

type obsBenchSize struct {
	Name  string
	DSpec gen.DesignSpec
	FSpec gen.FamilySpec
}

func obsBenchSizes() []obsBenchSize {
	family := gen.FamilySpec{Groups: 1, ModesPerGroup: []int{3}, BasePeriod: 2}
	return []obsBenchSize{
		{"small", gen.DesignSpec{Name: "obs_s", Seed: 11, Domains: 1, BlocksPerDomain: 1,
			Stages: 2, RegsPerStage: 2, CloudDepth: 1, CrossPaths: 0}, family},
		{"medium", gen.DesignSpec{Name: "obs_m", Seed: 12, Domains: 2, BlocksPerDomain: 2,
			Stages: 3, RegsPerStage: 3, CloudDepth: 2, CrossPaths: 2}, family},
		{"large", gen.DesignSpec{Name: "obs_l", Seed: 13, Domains: 3, BlocksPerDomain: 2,
			Stages: 4, RegsPerStage: 4, CloudDepth: 3, CrossPaths: 3}, family},
	}
}

func obsBenchFixture(tb testing.TB, s obsBenchSize) (*graph.Graph, []*sdc.Mode) {
	tb.Helper()
	gd, err := gen.Generate(s.DSpec)
	if err != nil {
		tb.Fatal(err)
	}
	g, err := graph.Build(gd.Design)
	if err != nil {
		tb.Fatal(err)
	}
	var modes []*sdc.Mode
	for _, m := range gd.Modes(s.FSpec) {
		mode, _, err := sdc.Parse(m.Name, m.Text, g.Design)
		if err != nil {
			tb.Fatalf("mode %s: %v", m.Name, err)
		}
		modes = append(modes, mode)
	}
	return g, modes
}

// obsMergeOnce runs one full traced or untraced MergeAll at the given
// intra-merge parallelism (0 = GOMAXPROCS, 1 = sequential) and returns
// the tracer (nil when untraced).
func obsMergeOnce(tb testing.TB, g *graph.Graph, modes []*sdc.Mode, traced bool, parallelism int) *obs.Tracer {
	tb.Helper()
	var tr *obs.Tracer
	opt := core.Options{Parallelism: parallelism}
	var root *obs.Span
	if traced {
		tr = obs.NewTracer()
		root = tr.Start("merge_all")
		opt.Trace = root
	}
	if _, _, _, err := core.MergeAll(context.Background(), g, modes, opt); err != nil {
		tb.Fatal(err)
	}
	root.Finish()
	return tr
}

func benchObsMerge(b *testing.B, s obsBenchSize, traced bool, parallelism int) {
	g, modes := obsBenchFixture(b, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obsMergeOnce(b, g, modes, traced, parallelism)
	}
}

func BenchmarkObsMergeSmall(b *testing.B)  { benchObsMerge(b, obsBenchSizes()[0], true, 0) }
func BenchmarkObsMergeMedium(b *testing.B) { benchObsMerge(b, obsBenchSizes()[1], true, 0) }
func BenchmarkObsMergeLarge(b *testing.B)  { benchObsMerge(b, obsBenchSizes()[2], true, 0) }

func BenchmarkObsMergeSmallUntraced(b *testing.B)  { benchObsMerge(b, obsBenchSizes()[0], false, 0) }
func BenchmarkObsMergeMediumUntraced(b *testing.B) { benchObsMerge(b, obsBenchSizes()[1], false, 0) }
func BenchmarkObsMergeLargeUntraced(b *testing.B)  { benchObsMerge(b, obsBenchSizes()[2], false, 0) }

// Parallel-engine scaling points: untraced MergeAll at fixed worker
// counts. The sequential (J1) run is the baseline the artifact's speedup
// figures divide against.
func BenchmarkMergeSmallJ1(b *testing.B)  { benchObsMerge(b, obsBenchSizes()[0], false, 1) }
func BenchmarkMergeSmallJ2(b *testing.B)  { benchObsMerge(b, obsBenchSizes()[0], false, 2) }
func BenchmarkMergeSmallJ4(b *testing.B)  { benchObsMerge(b, obsBenchSizes()[0], false, 4) }
func BenchmarkMergeMediumJ1(b *testing.B) { benchObsMerge(b, obsBenchSizes()[1], false, 1) }
func BenchmarkMergeMediumJ2(b *testing.B) { benchObsMerge(b, obsBenchSizes()[1], false, 2) }
func BenchmarkMergeMediumJ4(b *testing.B) { benchObsMerge(b, obsBenchSizes()[1], false, 4) }
func BenchmarkMergeLargeJ1(b *testing.B)  { benchObsMerge(b, obsBenchSizes()[2], false, 1) }
func BenchmarkMergeLargeJ2(b *testing.B)  { benchObsMerge(b, obsBenchSizes()[2], false, 2) }
func BenchmarkMergeLargeJ4(b *testing.B)  { benchObsMerge(b, obsBenchSizes()[2], false, 4) }

// benchBestOf runs the benchmark n times and returns the result with
// the lowest ns/op. Best-of-N is the standard defense against shared
// runners: the minimum is the least-perturbed measurement, so the
// traced-vs-untraced comparison stops being a coin flip on noise.
func benchBestOf(n int, f func(b *testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(f)
	for i := 1; i < n; i++ {
		if res := testing.Benchmark(f); res.NsPerOp() < best.NsPerOp() {
			best = res
		}
	}
	return best
}

// TestWriteBenchArtifact runs the three-size merge benchmark and writes
// BENCH_modemerge.json (or whatever MODEMERGE_BENCH_JSON names). Skipped
// unless the env var is set, so plain `go test ./...` stays fast. The
// artifact schema lives in internal/benchfmt, shared with the
// cmd/benchdiff regression sentinel.
func TestWriteBenchArtifact(t *testing.T) {
	path := os.Getenv("MODEMERGE_BENCH_JSON")
	if path == "" {
		t.Skip("MODEMERGE_BENCH_JSON not set; skipping bench artifact")
	}
	const bestOf = 3
	art := benchfmt.Artifact{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
	}
	for _, s := range obsBenchSizes() {
		g, modes := obsBenchFixture(t, s)
		measure := func(traced bool, parallelism int) testing.BenchmarkResult {
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					obsMergeOnce(b, g, modes, traced, parallelism)
				}
			})
		}
		// The traced and untraced headline numbers are best-of-N each —
		// their difference is the reported tracing overhead, and a single
		// noisy run on either side would swamp it.
		measureBest := func(traced bool, parallelism int) testing.BenchmarkResult {
			return benchBestOf(bestOf, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					obsMergeOnce(b, g, modes, traced, parallelism)
				}
			})
		}
		tracedRes := measureBest(true, 0)
		plainRes := measureBest(false, 0)

		// Parallel-engine scaling: sequential first (the speedup
		// baseline), then 2- and 4-worker runs of the same merge. Each
		// datapoint records the host CPUs and effective GOMAXPROCS it ran
		// under — scaling numbers are meaningless without them.
		seqRes := measure(false, 1)
		hostCPUs, maxprocs := runtime.NumCPU(), runtime.GOMAXPROCS(0)
		parallel := []benchfmt.ParallelEntry{{Workers: 1, NsPerOp: seqRes.NsPerOp(),
			Speedup: 1, HostCPUs: hostCPUs, GOMAXPROCS: maxprocs}}
		for _, w := range []int{2, 4} {
			res := measure(false, w)
			speedup := 0.0
			if ns := res.NsPerOp(); ns > 0 {
				speedup = float64(seqRes.NsPerOp()) / float64(ns)
			}
			parallel = append(parallel, benchfmt.ParallelEntry{
				Workers: w, NsPerOp: res.NsPerOp(), Speedup: speedup,
				HostCPUs: hostCPUs, GOMAXPROCS: maxprocs})
			t.Logf("%s: %d workers %d ns/op (%.2fx vs sequential)",
				s.Name, w, res.NsPerOp(), speedup)
		}

		tr := obsMergeOnce(t, g, modes, true, 0)
		totals := tr.StageTotals()
		stages := make([]benchfmt.StageEntry, 0, len(totals))
		for name, st := range totals {
			stages = append(stages, benchfmt.StageEntry{Stage: name, Count: st.Count,
				TotalNS: st.TotalNS, AllocBytes: st.AllocBytes})
		}
		sort.Slice(stages, func(i, j int) bool { return stages[i].Stage < stages[j].Stage })

		// Raw overhead can come out negative on noisy runners (the traced
		// run measured faster); the reported figure clamps at zero and the
		// raw value rides along for honesty.
		rawOverhead := 0.0
		if plain := plainRes.NsPerOp(); plain > 0 {
			rawOverhead = float64(tracedRes.NsPerOp()-plain) / float64(plain) * 100
		}
		overhead := rawOverhead
		if overhead < 0 {
			overhead = 0
		}
		art.Designs = append(art.Designs, benchfmt.DesignEntry{
			Design:              s.Name,
			Cells:               g.Design.Stats().Cells,
			Modes:               len(modes),
			NsPerOp:             tracedRes.NsPerOp(),
			AllocsPerOp:         tracedRes.AllocsPerOp(),
			BytesPerOp:          tracedRes.AllocedBytesPerOp(),
			UntracedNsPerOp:     plainRes.NsPerOp(),
			TraceOverheadPct:    overhead,
			TraceOverheadRawPct: rawOverhead,
			Parallel:            parallel,
			Stages:              stages,
		})
		t.Logf("%s: %d ns/op traced, %d ns/op untraced, overhead %.2f%% (raw %.2f%%)",
			s.Name, tracedRes.NsPerOp(), plainRes.NsPerOp(), overhead, rawOverhead)
	}
	// Incremental re-merge datapoint: edit one mode of twelve, re-merge
	// through a cache warmed with the baseline family, versus cold.
	{
		g, baseline, perturbed := incrBenchFixture(t)
		coldRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				incrMergeOnce(b, g, perturbed, nil)
			}
		})
		warmRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cache := incr.New(0)
				incrMergeOnce(b, g, baseline, cache)
				b.StartTimer()
				incrMergeOnce(b, g, perturbed, cache)
			}
		})
		speedup := 0.0
		if ns := warmRes.NsPerOp(); ns > 0 {
			speedup = float64(coldRes.NsPerOp()) / float64(ns)
		}
		art.Incremental = &benchfmt.IncrementalEntry{
			Design:       "medium",
			Modes:        len(baseline),
			ColdNsPerOp:  coldRes.NsPerOp(),
			WarmNsPerOp:  warmRes.NsPerOp(),
			SpeedupXCold: speedup,
		}
		t.Logf("incremental: cold %d ns/op, warm %d ns/op (%.2fx)",
			coldRes.NsPerOp(), warmRes.NsPerOp(), speedup)
	}
	// Hierarchical datapoints: ETM extraction cost and hierarchical-vs-
	// flat merge wall time at the three hierarchical sizes.
	art.Hierarchical = measureHierarchical(t)

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
