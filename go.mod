module modemerge

go 1.22
