#!/usr/bin/env bash
# Three-node merge-fabric e2e: proves the fabric's core guarantee end to
# end against real processes —
#
#   1. byte-identity: the same request merged by the fabric (coordinator
#      + remote workers) and by a plain single-process server yields a
#      byte-identical result document;
#   2. worker death: the first worker is SIGKILLed while provably
#      mid-clique; the lease expires, the clique reruns on the second
#      worker, and the result is still byte-identical;
#   3. load shed: a burst past the queue depth drains through the
#      documented envelope — every response is an accept or a 429
#      rate_limited, and every accepted job reaches done.
#
# Runners (E2E_RUNNER):
#   compose  (default) docker compose against deploy/docker-compose.yml
#   process  plain local processes; no docker needed
#
# Needs: curl, jq, go (payload generation; process mode also builds the
# server). E2E_STAGES (default 30000) sizes the kill-window design.
set -euo pipefail

cd "$(dirname "$0")/../.."
RUNNER="${E2E_RUNNER:-compose}"
STAGES="${E2E_STAGES:-30000}"
TMP="$(mktemp -d)"
COMPOSE=(docker compose -f deploy/docker-compose.yml)

COORD=http://127.0.0.1:18080
SOLO=http://127.0.0.1:18081

declare -A PIDS=()
STATUS=fail

log() { printf '=== %s\n' "$*"; }
fail() {
  printf 'FAIL: %s\n' "$*" >&2
  exit 1
}

on_exit() {
  if [ "$STATUS" != pass ]; then
    log "harness failed; node logs follow"
    case "$RUNNER" in
      compose) "${COMPOSE[@]}" logs --tail 40 || true ;;
      process) tail -n 20 "$TMP"/*.log || true ;;
    esac
  fi
  case "$RUNNER" in
    compose) "${COMPOSE[@]}" down -v --remove-orphans >/dev/null 2>&1 || true ;;
    process)
      for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
      wait 2>/dev/null || true
      ;;
  esac
  rm -rf "$TMP"
}
trap on_exit EXIT

# start_node name [args...] — compose mode takes its flags from the YAML
# (keep both in sync); process mode takes them from here.
start_node() {
  local name=$1
  shift
  case "$RUNNER" in
    compose) "${COMPOSE[@]}" up -d --no-build "$name" >/dev/null ;;
    process)
      ./bin/modemerged "$@" >"$TMP/$name.log" 2>&1 &
      PIDS[$name]=$!
      ;;
  esac
}

kill_node() {
  local name=$1
  case "$RUNNER" in
    compose) "${COMPOSE[@]}" kill -s KILL "$name" >/dev/null ;;
    process) kill -9 "${PIDS[$name]}" ;;
  esac
}

wait_http() {
  local base=$1 i
  for i in $(seq 1 120); do
    if curl -fsS --max-time 2 "$base/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.5
  done
  fail "$base never became healthy"
}

submit() { # base payload-file [extra curl args...]
  local base=$1 payload=$2
  shift 2
  curl -fsS -X POST "$base/v2/merge" -H 'Content-Type: application/json' \
    --data-binary @"$payload" "$@" | jq -r .id
}

wait_job() { # base id timeout-seconds
  local base=$1 id=$2 deadline=$((SECONDS + $3)) view status
  while :; do
    view=$(curl -fsS "$base/v2/jobs/$id")
    status=$(jq -r .status <<<"$view")
    case "$status" in
      done) return 0 ;;
      failed | canceled) fail "job $id ended $status: $(jq -r .error <<<"$view")" ;;
    esac
    [ "$SECONDS" -lt "$deadline" ] || fail "job $id stuck in $status"
    sleep 0.3
  done
}

# --- bring-up ---------------------------------------------------------

case "$RUNNER" in
  compose)
    log "building image"
    "${COMPOSE[@]}" build coordinator >/dev/null
    ;;
  process)
    log "building ./bin/modemerged"
    go build -o bin/modemerged ./cmd/modemerged
    ;;
esac

log "generating payloads (stages=$STAGES)"
go run ./deploy/e2e/genpayload -stages "$STAGES" >"$TMP/big.json"

# Lease must comfortably exceed one clique merge (~3s locally, slower
# on CI) or a live worker's execution gets requeued as a false death;
# MaxAttempts=5 gives further slack on overloaded runners.
log "starting coordinator (pure dispatcher, 10s lease) and solo reference"
start_node coordinator -addr :18080 -fabric -fabric-local-executors=-1 \
  -fabric-lease-ttl=10s -fabric-max-attempts=5 -workers=1 -queue=4
start_node solo -addr :18081 -workers=1 -queue=4
wait_http "$COORD"
wait_http "$SOLO"

# --- phase 1: single-process reference --------------------------------

log "merging on the solo reference server"
ref_id=$(submit "$SOLO" "$TMP/big.json")
wait_job "$SOLO" "$ref_id" 120
curl -fsS "$SOLO/v2/jobs/$ref_id/result" >"$TMP/ref.json"

# --- phase 2: fabric merge with a worker killed mid-clique ------------

log "submitting to the coordinator, then starting worker1"
fab_id=$(submit "$COORD" "$TMP/big.json")
start_node worker1 -role worker -join "$COORD" -worker-id worker1

victim=""
for _ in $(seq 1 600); do
  victim=$(curl -fsS "$COORD/v2/cluster" | jq -r '.in_flight[0].worker // empty')
  [ -n "$victim" ] && break
  sleep 0.1
done
[ -n "$victim" ] || fail "clique job was never claimed"
[ "$victim" = worker1 ] || fail "expected worker1 mid-clique, got $victim"

log "worker1 is mid-clique; killing it"
kill_node worker1

log "starting worker2; the lease must expire and the clique rerun there"
start_node worker2 -role worker -join "$COORD" -worker-id worker2
wait_job "$COORD" "$fab_id" 120
curl -fsS "$COORD/v2/jobs/$fab_id/result" >"$TMP/fab.json"

log "comparing fabric result against the reference"
cmp "$TMP/ref.json" "$TMP/fab.json" ||
  fail "fabric result differs from single-process reference"

cluster=$(curl -fsS "$COORD/v2/cluster")
retries=$(jq .retries <<<"$cluster")
completed=$(jq .completed <<<"$cluster")
[ "$retries" -ge 1 ] || fail "no retry recorded after worker kill: $cluster"
[ "$completed" -ge 1 ] || fail "no completed clique recorded: $cluster"
log "worker kill survived: retries=$retries completed=$completed, byte-identical result"

# --- phase 3: load-shed burst against the solo server -----------------

BURST=16
log "load-shed burst: $BURST concurrent submissions against queue=4"
for i in $(seq 0 $((BURST - 1))); do
  go run ./deploy/e2e/genpayload -stages 2000 -salt "$i" >"$TMP/q$i.json"
done
# Wait only the curl pids: in process mode the server nodes are also
# background children of this shell, and a bare `wait` never returns.
curl_pids=()
for i in $(seq 0 $((BURST - 1))); do
  curl -sS -o "$TMP/resp$i.json" -w '%{http_code}' -X POST "$SOLO/v2/merge" \
    -H 'Content-Type: application/json' -H "Idempotency-Key: burst-$i" \
    --data-binary @"$TMP/q$i.json" >"$TMP/code$i" &
  curl_pids+=("$!")
done
for pid in "${curl_pids[@]}"; do wait "$pid"; done

accepted=()
shed=0
for i in $(seq 0 $((BURST - 1))); do
  code=$(cat "$TMP/code$i")
  case "$code" in
    200 | 202) accepted+=("$(jq -r .id "$TMP/resp$i.json")") ;;
    429)
      shed=$((shed + 1))
      [ "$(jq -r .error.code "$TMP/resp$i.json")" = rate_limited ] ||
        fail "shed response $i lacks rate_limited envelope: $(cat "$TMP/resp$i.json")"
      ;;
    *) fail "burst $i: unexpected status $code: $(cat "$TMP/resp$i.json")" ;;
  esac
done
[ "${#accepted[@]}" -ge 1 ] || fail "burst accepted nothing"
[ "$shed" -ge 1 ] || fail "queue=4 with $BURST submissions shed nothing"

log "waiting for ${#accepted[@]} accepted jobs (shed $shed); none may drop"
for id in "${accepted[@]}"; do
  wait_job "$SOLO" "$id" 120
done

STATUS=pass
log "PASS: byte-identity across worker death + load-shed envelope held"
