// Command genpayload emits a merge-request JSON document for the
// deploy/e2e harness. The design is a long register chain behind a
// clock mux, with a func mode and a test mode that analyze mergeable —
// the same shape the service tests use, scaled up so one clique merge
// takes seconds instead of milliseconds. That duration is what makes
// the worker-kill e2e deterministic: the harness has a multi-second
// window to kill the worker while the clique is provably mid-merge.
//
// Usage:
//
//	genpayload -stages 30000            > big.json    # kill-window payload
//	genpayload -stages 2000 -salt 7     > burst7.json # distinct digest per burst slot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type modeInput struct {
	Name string `json:"name"`
	SDC  string `json:"sdc"`
}

type mergeRequest struct {
	Verilog string      `json:"verilog"`
	Modes   []modeInput `json:"modes"`
}

const funcSDC = `
create_clock -name FCLK -period 2 [get_ports clk]
set_case_analysis 0 [get_ports tmode]
set_input_delay 0.4 -clock FCLK [get_ports din]
set_output_delay 0.4 -clock FCLK [get_ports dout]
`

const testSDC = `
create_clock -name TCLK -period 10 [get_ports tclk]
set_case_analysis 1 [get_ports tmode]
set_input_delay 1.0 -clock TCLK [get_ports din]
set_output_delay 1.0 -clock TCLK [get_ports dout]
set_multicycle_path 2 -setup -from [get_clocks TCLK]
`

// chain builds a register chain of the given depth clocked through a
// clock mux, so the func and test modes select different clocks via
// case analysis yet stay mergeable into one two-mode clique.
func chain(stages int) string {
	var b strings.Builder
	b.WriteString("module chain (clk, tclk, tmode, din, dout);\n")
	b.WriteString("  input clk, tclk, tmode, din;\n  output dout;\n  wire gck;\n")
	b.WriteString("  MUX2 ckmux (.I0(clk), .I1(tclk), .S(tmode), .Z(gck));\n")
	prev := "din"
	for i := 0; i < stages; i++ {
		fmt.Fprintf(&b, "  wire q%d, n%d;\n", i, i)
		fmt.Fprintf(&b, "  DFF r%d (.CP(gck), .D(%s), .Q(q%d));\n", i, prev, i)
		fmt.Fprintf(&b, "  INV u%d (.A(q%d), .Z(n%d));\n", i, i, i)
		prev = fmt.Sprintf("n%d", i)
	}
	fmt.Fprintf(&b, "  BUF ob (.A(%s), .Z(dout));\nendmodule\n", prev)
	return b.String()
}

func main() {
	stages := flag.Int("stages", 30000, "register-chain depth; larger = longer clique merge")
	salt := flag.String("salt", "", "mode-name suffix so each payload digests uniquely (burst payloads)")
	flag.Parse()

	req := mergeRequest{
		Verilog: chain(*stages),
		Modes: []modeInput{
			{Name: "func" + *salt, SDC: funcSDC},
			{Name: "test" + *salt, SDC: testSDC},
		},
	}
	if err := json.NewEncoder(os.Stdout).Encode(req); err != nil {
		fmt.Fprintln(os.Stderr, "genpayload:", err)
		os.Exit(1)
	}
}
