// Incremental re-merge benchmark: the "edit one mode of N" scenario the
// content-addressed sub-merge cache exists for. The fixture is the
// medium observability design with a four-group mode family (twelve
// modes, four merge cliques); the warm benchmark re-merges after a
// one-mode edit against a cache warmed with the baseline family, so
// three of the four cliques replay from cache and the fourth rebuilds
// only the edited mode's share. Results land in BENCH_modemerge.json
// next to the tracing and parallel-scaling numbers (see
// bench_obs_test.go).
package modemerge

import (
	"context"
	"testing"

	"modemerge/internal/core"
	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/incr"
	"modemerge/internal/sdc"
)

// incrBenchFixture builds the incremental scenario: the baseline mode
// family and a copy with one mode edited (an extra clock-uncertainty
// line on the middle mode, re-parsed — the difftest incremental oracle
// models edits the same way).
func incrBenchFixture(tb testing.TB) (g *graph.Graph, baseline, perturbed []*sdc.Mode) {
	tb.Helper()
	spec := obsBenchSizes()[1] // medium design
	spec.FSpec = gen.FamilySpec{Groups: 4, ModesPerGroup: []int{3, 3, 3, 3}, BasePeriod: 2}
	g, baseline = obsBenchFixture(tb, spec)

	pi := len(baseline) / 2
	if len(baseline[pi].Clocks) == 0 {
		tb.Fatal("fixture mode has no clocks to perturb")
	}
	text := sdc.Write(baseline[pi]) + "\nset_clock_uncertainty 0.123 [get_clocks " +
		baseline[pi].Clocks[0].Name + "]\n"
	pm, _, err := sdc.Parse(baseline[pi].Name, text, g.Design)
	if err != nil {
		tb.Fatal(err)
	}
	perturbed = append([]*sdc.Mode(nil), baseline...)
	perturbed[pi] = pm
	return g, baseline, perturbed
}

func incrMergeOnce(tb testing.TB, g *graph.Graph, modes []*sdc.Mode, cache *incr.Cache) {
	tb.Helper()
	if _, _, _, err := core.MergeAll(context.Background(), g, modes, core.Options{Cache: cache}); err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkMergeMediumCold is the reference: a full cacheless merge of
// the perturbed family.
func BenchmarkMergeMediumCold(b *testing.B) {
	g, _, perturbed := incrBenchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		incrMergeOnce(b, g, perturbed, nil)
	}
}

// BenchmarkMergeMediumWarm measures the incremental re-merge after a
// one-mode edit. Each iteration re-warms a fresh cache with the baseline
// family off the clock (otherwise iteration two would measure a pure
// replay instead of the edit scenario) and times only the perturbed
// re-merge.
func BenchmarkMergeMediumWarm(b *testing.B) {
	g, baseline, perturbed := incrBenchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cache := incr.New(0)
		incrMergeOnce(b, g, baseline, cache)
		b.StartTimer()
		incrMergeOnce(b, g, perturbed, cache)
	}
}
