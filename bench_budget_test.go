package modemerge

import (
	"os"
	"strconv"
	"testing"
	"time"
)

// largeMergeBudgetDefaultMS is the default wall-clock budget for one
// untraced merge of the large generated design. The post-optimization
// merge takes ~30 ms single-threaded on the reference 1-CPU CI box
// (see EXPERIMENTS.md), so 100 ms is roughly 3× headroom: generous
// enough that runner noise never trips it, tight enough that losing the
// data_refine caches or prunes (a 1.5–2× slowdown, plus growth) fails
// loudly. Override with MODEMERGE_PERF_BUDGET_MS on slower or faster
// hardware.
const largeMergeBudgetDefaultMS = 100

// TestLargeMergeBudget is the gating half of the perf harness: the
// benchmarks above report numbers, this test enforces one. Best-of-three
// keeps scheduler hiccups from failing a healthy build — a real
// regression slows every run, noise slows one.
func TestLargeMergeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("perf budget not meaningful under -short")
	}
	budgetMS := int64(largeMergeBudgetDefaultMS)
	if env := os.Getenv("MODEMERGE_PERF_BUDGET_MS"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil || v <= 0 {
			t.Fatalf("MODEMERGE_PERF_BUDGET_MS=%q: want a positive integer", env)
		}
		budgetMS = v
	}
	s := obsBenchSizes()[2] // large
	g, modes := obsBenchFixture(t, s)

	// One warm-up merge pays one-time costs (page faults, lazy graph
	// indexes shared via the fixture) outside the measured window.
	obsMergeOnce(t, g, modes, false, 0)

	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		obsMergeOnce(t, g, modes, false, 0)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	t.Logf("large merge best-of-3: %v (budget %d ms)", best, budgetMS)
	if best > time.Duration(budgetMS)*time.Millisecond {
		t.Fatalf("large merge took %v, over the %d ms budget — data_refine hot path regressed "+
			"(set MODEMERGE_PERF_BUDGET_MS to adjust on non-reference hardware)", best, budgetMS)
	}
}
