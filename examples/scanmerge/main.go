// Scanmerge: merge the functional, scan-shift and test-capture modes of a
// generated SoC-like design, then compare multi-mode STA against
// merged-mode STA — the paper's Table 6 experiment in miniature.
//
//	go run ./examples/scanmerge
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"modemerge/internal/core"
	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/sdc"
	"modemerge/internal/sta"
)

func main() {
	g, err := gen.Generate(gen.DesignSpec{
		Name: "soc", Seed: 7, Domains: 2, BlocksPerDomain: 2,
		Stages: 4, RegsPerStage: 8, CloudDepth: 3, CrossPaths: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats := g.Design.Stats()
	fmt.Printf("generated design: %d cells (%d sequential), %d ports\n",
		stats.Cells, stats.Sequential, stats.Ports)

	tg, err := graph.Build(g.Design)
	if err != nil {
		log.Fatal(err)
	}

	// One merge group: functional, scan shift and test capture.
	var modes []*sdc.Mode
	for _, ms := range g.Modes(gen.FamilySpec{Groups: 1, ModesPerGroup: []int{3}, BasePeriod: 2}) {
		m, _, err := sdc.Parse(ms.Name, ms.Text, g.Design)
		if err != nil {
			log.Fatal(err)
		}
		modes = append(modes, m)
		fmt.Printf("mode %-8s: %d clocks, %d cases, %d exceptions\n",
			m.Name, len(m.Clocks), len(m.Cases), len(m.Exceptions))
	}

	start := time.Now()
	merged, rep, err := core.Merge(context.Background(), g.Design, modes, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerged %d modes into %q in %v\n", len(modes), merged.Name,
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("  clocks=%d exclusivePairs=%d stops=%d uniquified=%d inferred FPs=%d iterations=%d\n",
		rep.MergedClocks, rep.ExclusivePairs, rep.ClockStops,
		rep.UniquifiedExceptions, rep.AddedFalsePaths+rep.LaunchBlocks, rep.Iterations)

	// Validation.
	res, err := core.CheckEquivalence(context.Background(), tg, modes, merged, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  equivalence: %s\n", res)

	// Multi-mode STA vs merged-mode STA.
	worst := map[string]sta.EndpointResult{}
	start = time.Now()
	for _, m := range modes {
		ctx, err := sta.NewContext(tg, m, sta.Options{})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range ctx.AnalyzeEndpoints(context.Background()) {
			if !r.HasSetup {
				continue
			}
			if w, ok := worst[r.Name]; !ok || r.SetupSlack < w.SetupSlack {
				worst[r.Name] = r
			}
		}
	}
	individualTime := time.Since(start)

	start = time.Now()
	mctx, err := sta.NewContext(tg, merged, sta.Options{})
	if err != nil {
		log.Fatal(err)
	}
	mergedWorst := map[string]sta.EndpointResult{}
	for _, r := range mctx.AnalyzeEndpoints(context.Background()) {
		if r.HasSetup {
			mergedWorst[r.Name] = r
		}
	}
	mergedTime := time.Since(start)

	conforming, total := 0, 0
	maxDev := 0.0
	for name, iw := range worst {
		mw, ok := mergedWorst[name]
		if !ok {
			total++
			continue
		}
		total++
		dev := math.Abs(mw.SetupSlack - iw.SetupSlack)
		if dev > maxDev {
			maxDev = dev
		}
		if dev <= 0.01*iw.CapturePeriod {
			conforming++
		}
	}
	fmt.Printf("\nSTA: %d individual modes in %v; merged mode in %v (%.1f%% less)\n",
		len(modes), individualTime.Round(time.Millisecond), mergedTime.Round(time.Millisecond),
		100*(1-mergedTime.Seconds()/individualTime.Seconds()))
	fmt.Printf("conformity: %d/%d endpoints within 1%% of capture period (max deviation %.4f)\n",
		conforming, total, maxDev)
}
