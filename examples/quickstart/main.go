// Quickstart: merge two SDC timing modes of a small design and print the
// merged constraints plus the equivalence verdict.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"modemerge/internal/core"
	"modemerge/internal/graph"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
	"modemerge/internal/sdc"
)

func main() {
	// A tiny design: two registers clocked through a mux that selects a
	// functional or a test clock.
	b := netlist.NewBuilder("quick", library.Default())
	b.Port("clk", netlist.In)
	b.Port("tclk", netlist.In)
	b.Port("tmode", netlist.In)
	b.Port("din", netlist.In)
	b.Port("dout", netlist.Out)
	b.Inst("MUX2", "ckmux", map[string]string{"I0": "clk", "I1": "tclk", "S": "tmode", "Z": "gck"})
	b.Inst("DFF", "r1", map[string]string{"CP": "gck", "D": "din", "Q": "q1"})
	b.Inst("INV", "u1", map[string]string{"A": "q1", "Z": "n1"})
	b.Inst("DFF", "r2", map[string]string{"CP": "gck", "D": "n1", "Q": "dout"})
	design := b.MustBuild()

	g, err := graph.Build(design)
	if err != nil {
		log.Fatal(err)
	}

	// Two modes: functional (fast clock, test mode off) and test (slow
	// clock, test mode on). Their case analyses conflict, so a textual
	// merge is impossible — the graph-based merge handles it.
	parse := func(name, src string) *sdc.Mode {
		m, _, err := sdc.Parse(name, src, design)
		if err != nil {
			log.Fatal(err)
		}
		return m
	}
	functional := parse("func", `
create_clock -name FCLK -period 2 [get_ports clk]
set_case_analysis 0 [get_ports tmode]
set_input_delay 0.4 -clock FCLK [get_ports din]
set_output_delay 0.4 -clock FCLK [get_ports dout]
`)
	test := parse("test", `
create_clock -name TCLK -period 10 [get_ports tclk]
set_case_analysis 1 [get_ports tmode]
set_input_delay 1.0 -clock TCLK [get_ports din]
set_output_delay 1.0 -clock TCLK [get_ports dout]
set_multicycle_path 2 -setup -from [get_clocks TCLK]
`)

	merged, report, err := core.Merge(context.Background(), design, []*sdc.Mode{functional, test}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== merged mode ===")
	fmt.Print(sdc.Write(merged))
	fmt.Printf("\nmerge report: clocks=%d exclusivePairs=%d uniquified=%d inferred FPs=%d\n",
		report.MergedClocks, report.ExclusivePairs,
		report.UniquifiedExceptions, report.AddedFalsePaths+report.LaunchBlocks)

	res, err := core.CheckEquivalence(context.Background(), g, []*sdc.Mode{functional, test}, merged, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("equivalence: %s (equivalent=%v)\n", res, res.Equivalent())
}
