// Equivalence: use the 3-pass timing-relationship engine as a standalone
// SDC equivalence checker — the paper's §2 definition ("two constraint
// sets are equivalent iff they produce the same timing relationships"),
// which no textual diff can decide.
//
//	go run ./examples/equivalence
package main

import (
	"context"
	"fmt"
	"log"

	"modemerge/internal/core"
	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/sdc"
)

func main() {
	design := gen.PaperCircuit()
	g, err := graph.Build(design)
	if err != nil {
		log.Fatal(err)
	}
	check := func(title, srcA, srcB string) {
		a, _, err := sdc.Parse("a", srcA, design)
		if err != nil {
			log.Fatal(err)
		}
		b, _, err := sdc.Parse("b", srcB, design)
		if err != nil {
			log.Fatal(err)
		}
		// Equivalence is symmetric containment: b must not relax a, and
		// a must not relax b.
		res1, err := core.CheckEquivalence(context.Background(), g, []*sdc.Mode{a}, b, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		res2, err := core.CheckEquivalence(context.Background(), g, []*sdc.Mode{b}, a, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		equal := res1.Equivalent() && res1.PessimisticGroups == 0 &&
			res2.Equivalent() && res2.PessimisticGroups == 0
		fmt.Printf("%-60s %v\n", title, equal)
		if !equal {
			for _, m := range res1.OptimisticMismatches {
				fmt.Printf("    b relaxes a: %s\n", m)
			}
			for _, m := range res2.OptimisticMismatches {
				fmt.Printf("    a relaxes b: %s\n", m)
			}
			if res1.PessimisticGroups > 0 {
				fmt.Printf("    b tightens a on %d path groups\n", res1.PessimisticGroups)
			}
			if res2.PessimisticGroups > 0 {
				fmt.Printf("    a tightens b on %d path groups\n", res2.PessimisticGroups)
			}
		}
	}

	base := `
create_clock -name clkA -period 10 [get_ports clk1]
set_false_path -from [get_pins rA/CP] -to [get_pins rY/D]
`
	// The same intent written endpoint-wise vs startpoint-wise: textual
	// diff says different, the timing graph says equivalent — rA is the
	// only startpoint reaching rY/D through and1 together with rB, and
	// the -through form covers exactly the same paths.
	rewritten := `
create_clock -name clkA -period 10 [get_ports clk1]
set_false_path -from [get_pins rA/CP] -through [get_pins inv1/Z] -to [get_pins rY/D]
`
	check("same false path written via -through (expected true):", base, rewritten)

	// A genuinely different constraint: false path on a different
	// endpoint.
	different := `
create_clock -name clkA -period 10 [get_ports clk1]
set_false_path -from [get_pins rA/CP] -to [get_pins rX/D]
`
	check("false path moved to another endpoint (expected false):", base, different)

	// Multicycle vs false path on the same paths.
	mcp := `
create_clock -name clkA -period 10 [get_ports clk1]
set_multicycle_path 3 -from [get_pins rA/CP] -to [get_pins rY/D]
`
	check("multicycle instead of false path (expected false):", base, mcp)

	// Case analysis vs the false paths it implies: setting rB/Q to a
	// constant kills the rB leg into and1 and (by the controlling zero)
	// the rA leg too.
	caseSrc := `
create_clock -name clkA -period 10 [get_ports clk1]
set_case_analysis 0 rB/Q
`
	fpSrc := `
create_clock -name clkA -period 10 [get_ports clk1]
set_false_path -through [get_pins and1/Z]
set_false_path -from [get_pins rB/CP]
`
	check("case analysis vs equivalent false paths (expected true):", caseSrc, fpSrc)
}
