// The paper's running example: the Figure 1 circuit with Constraint Sets
// 1–6, reproducing Tables 1–4.
//
//	go run ./examples/paper_circuit
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"modemerge/internal/core"
	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/relation"
	"modemerge/internal/sdc"
	"modemerge/internal/sta"
)

var design = gen.PaperCircuit()

func ctxFor(name, src string) *sta.Context {
	g, err := graph.Build(design)
	if err != nil {
		log.Fatal(err)
	}
	mode, _, err := sdc.Parse(name, src, design)
	if err != nil {
		log.Fatal(err)
	}
	ctx, err := sta.NewContext(g, mode, sta.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return ctx
}

func main() {
	table1()
	tables234()
	constraintSets345()
}

// table1 reproduces Table 1: timing relationships for Constraint Set 1.
func table1() {
	fmt.Println("=== Table 1: timing relationships for Constraint Set 1 ===")
	ctx := ctxFor("set1", `
create_clock -name clkA -period 10 [get_ports clk1]
set_multicycle_path 2 -through [get_pins inv1/Z]
set_false_path -through [get_pins and1/Z]
`)
	rels := ctx.EndpointRelations(context.Background())
	fmt.Printf("%-8s %-8s %-8s %-8s %s\n", "Start", "End", "Launch", "Capture", "State")
	for _, end := range []string{"rX/D", "rY/D", "rZ/D"} {
		key := sta.RelKey{Start: "*", End: end, Launch: "clkA", Capture: "clkA", Check: relation.Setup}
		state := "-"
		if s, ok := rels[key]; ok {
			state = s.String()
		}
		fmt.Printf("%-8s %-8s %-8s %-8s %s\n", "*", end, "clkA", "clkA", state)
	}
	fmt.Println()
}

// tables234 runs the 3-pass comparison of §3.2 on Constraint Set 6,
// printing the per-pass comparison tables.
func tables234() {
	modeA := `
create_clock -p 10 -name clkA [get_ports clk1]
set_false_path -to rX/D
set_false_path -to rY/D
set_false_path -through inv3/Z
`
	modeB := `
create_clock -p 10 -name clkA [get_ports clk1]
set_false_path -from rA/CP
set_false_path -to rZ/D
`
	prelim := `create_clock -name clkA -period 10 -add [get_ports clk1]`

	ctxA, ctxB := ctxFor("A", modeA), ctxFor("B", modeB)
	ctxM := ctxFor("A+B", prelim)
	g := ctxM.G

	fmt.Println("=== Table 2: pass-1 comparison (Constraint Set 6) ===")
	relA, relB, relM := ctxA.EndpointRelations(context.Background()), ctxB.EndpointRelations(context.Background()), ctxM.EndpointRelations(context.Background())
	fmt.Printf("%-8s %-8s %-8s %-8s %-12s %-12s %s\n",
		"Start", "End", "Launch", "Capture", "Individual", "Merged", "Result")
	var ambiguousEnds []string
	for _, end := range []string{"rX/D", "rY/D", "rZ/D"} {
		key := sta.RelKey{Start: "*", End: end, Launch: "clkA", Capture: "clkA", Check: relation.Setup}
		indiv := combined(relA[key], relB[key])
		merged := orFalse(relM[key])
		result := compare(relA[key], relB[key], merged)
		if result == relation.Ambiguous {
			ambiguousEnds = append(ambiguousEnds, end)
		}
		fmt.Printf("%-8s %-8s %-8s %-8s %-12s %-12s %s\n",
			"*", end, "clkA", "clkA", indiv, merged.String(), result)
	}
	fmt.Println()

	fmt.Println("=== Table 3: pass-2 comparison for ambiguous endpoints ===")
	fmt.Printf("%-8s %-8s %-8s %-8s %-12s %-12s %s\n",
		"Start", "End", "Launch", "Capture", "Individual", "Merged", "Result")
	type sePair struct{ start, end string }
	var ambiguousPairs []sePair
	for _, end := range ambiguousEnds {
		endID, _ := g.NodeByName(end)
		seA, seB, seM := ctxA.StartEndRelations(endID), ctxB.StartEndRelations(endID), ctxM.StartEndRelations(endID)
		starts := map[string]bool{}
		for k := range seM {
			starts[k.Start] = true
		}
		var order []string
		for s := range starts {
			order = append(order, s)
		}
		sort.Strings(order)
		for _, start := range order {
			key := sta.RelKey{Start: start, End: end, Launch: "clkA", Capture: "clkA", Check: relation.Setup}
			merged := orFalse(seM[key])
			result := compare(seA[key], seB[key], merged)
			if result == relation.Ambiguous {
				ambiguousPairs = append(ambiguousPairs, sePair{start, end})
			}
			fmt.Printf("%-8s %-8s %-8s %-8s %-12s %-12s %s\n",
				start, end, "clkA", "clkA", combined(seA[key], seB[key]), merged.String(), result)
		}
	}
	fmt.Println()

	fmt.Println("=== Table 4: pass-3 comparison at reconvergence points ===")
	fmt.Printf("%-8s %-10s %-8s %-8s %-8s %-12s %-12s %s\n",
		"Start", "Through", "End", "Launch", "Capture", "Individual", "Merged", "Result")
	for _, p := range ambiguousPairs {
		startID, _ := g.NodeByName(p.start)
		endID, _ := g.NodeByName(p.end)
		trA := indexThrough(ctxA.ThroughRelations(startID, endID))
		trB := indexThrough(ctxB.ThroughRelations(startID, endID))
		trM := indexThrough(ctxM.ThroughRelations(startID, endID))
		// The paper inspects the divergence branches feeding the
		// reconvergent gate.
		for _, through := range []string{"and2/A", "inv3/A"} {
			key := sta.RelKey{Start: p.start, End: p.end, Launch: "clkA", Capture: "clkA", Check: relation.Setup}
			merged := orFalse(trM[through][key])
			result := compare(trA[through][key], trB[through][key], merged)
			fmt.Printf("%-8s %-10s %-8s %-8s %-8s %-12s %-12s %s\n",
				p.start, through, p.end, "clkA", "clkA",
				combined(trA[through][key], trB[through][key]), merged.String(), result)
		}
	}
	fmt.Println()

	fmt.Println("=== Constraint Set 6: the merged mode after refinement ===")
	mA, _, _ := sdc.Parse("A", modeA, design)
	mB, _, _ := sdc.Parse("B", modeB, design)
	merged, _, err := core.Merge(context.Background(), design, []*sdc.Mode{mA, mB}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sdc.Write(merged))
	fmt.Println()
}

// constraintSets345 demonstrates the preliminary-merging machinery on the
// paper's Constraint Sets 3, 4 and 5.
func constraintSets345() {
	run := func(title, srcA, srcB string) {
		fmt.Printf("=== %s ===\n", title)
		mA, _, err := sdc.Parse("A", srcA, design)
		if err != nil {
			log.Fatal(err)
		}
		mB, _, err := sdc.Parse("B", srcB, design)
		if err != nil {
			log.Fatal(err)
		}
		merged, _, err := core.Merge(context.Background(), design, []*sdc.Mode{mA, mB}, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(sdc.Write(merged))
		fmt.Println()
	}
	run("Constraint Set 3: clock refinement", `
create_clock -period 10 -name clkA [get_ports clk1]
create_clock -period 20 -name clkB [get_ports clk2]
set_case_analysis 0 sel1
set_case_analysis 1 sel2
`, `
create_clock -period 10 -name clkA [get_ports clk1]
create_clock -period 20 -name clkB [get_ports clk2]
set_case_analysis 1 sel1
set_case_analysis 0 sel2
`)
	run("Constraint Set 4: exception uniquification", `
create_clock -name clkA -period 10 [get_ports clk1]
set_case_analysis 0 [get_pins mux1/S]
set_multicycle_path 2 -from [get_pins rA/CP]
`, `
create_clock -name clkB -period 8 [get_ports clk1]
set_case_analysis 1 [get_pins mux1/S]
`)
	run("Constraint Set 5: data refinement", `
create_clock -name ClkA -period 2 [get_ports clk1]
set_input_delay 0.5 -clock ClkA [get_ports in1]
set_output_delay 0.5 -clock ClkA [get_ports out1]
`, `
create_clock -name ClkB -period 1 [get_ports clk1]
set_input_delay 0.5 -clock ClkB [get_ports in1]
set_output_delay 0.5 -clock ClkB [get_ports out1]
set_case_analysis 0 rB/Q
`)
}

func single(s relation.Set) (relation.State, bool) {
	if s.Empty() {
		return relation.StateFalse, true
	}
	return s.Single()
}

// combined renders the union of two modes' state sets, "-" when empty.
func combined(a, b relation.Set) string {
	var u relation.Set
	if a.Empty() {
		u.Add(relation.StateFalse)
	}
	u.AddSet(a)
	if b.Empty() {
		u.Add(relation.StateFalse)
	}
	u.AddSet(b)
	return u.String()
}

func orFalse(s relation.Set) relation.Set {
	if s.Empty() {
		return relation.NewSet(relation.StateFalse)
	}
	return s
}

// compare reproduces the paper's M/X/A verdicts from the two individual
// modes and the merged set.
func compare(a, b, merged relation.Set) relation.CompareResult {
	stA, okA := single(a)
	stB, okB := single(b)
	if !okA || !okB {
		return relation.Ambiguous
	}
	target := relation.NewSet(relation.MergeTarget([]relation.State{stA, stB}))
	return relation.Compare(target, merged)
}

// indexThrough maps through-relations by node name.
func indexThrough(rels []sta.ThroughRel) map[string]map[sta.RelKey]relation.Set {
	out := map[string]map[sta.RelKey]relation.Set{}
	for _, tr := range rels {
		out[tr.Name] = tr.States
	}
	return out
}
