// benchdiff is the perf-regression sentinel: it diffs two
// BENCH_modemerge.json artifacts per design × stage × worker count,
// renders a markdown report, and exits nonzero when any metric slowed
// beyond the noise tolerance.
//
// Usage:
//
//	benchdiff -old BENCH_old.json -new BENCH_new.json [-tolerance 0.10] [-out report.md]
//
// Exit codes: 0 no regressions, 1 regressions found, 2 usage/read error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"modemerge/internal/benchfmt"
)

func main() {
	oldPath := flag.String("old", "", "baseline artifact (required)")
	newPath := flag.String("new", "", "candidate artifact (required)")
	tolerance := flag.Float64("tolerance", 0.10,
		"relative slowdown allowed before a metric counts as regressed")
	minDelta := flag.Int64("min-delta-ns", 50_000,
		"absolute slowdown floor in nanoseconds; smaller deltas are never regressions")
	out := flag.String("out", "", "write the markdown report here (default stdout)")
	flag.Parse()

	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		flag.Usage()
		os.Exit(2)
	}

	oldArt, err := benchfmt.ReadArtifact(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newArt, err := benchfmt.ReadArtifact(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	rep := benchfmt.Diff(oldArt, newArt, benchfmt.DiffOptions{
		Tolerance:  *tolerance,
		MinDeltaNS: *minDelta,
	})

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteMarkdown(w); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	if regs := rep.Regressions(); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond %.0f%%:\n",
			len(regs), *tolerance*100)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s: %d -> %d ns/op (%+.1f%%)\n",
				r.Metric, r.OldNS, r.NewNS, r.DeltaPct)
		}
		os.Exit(1)
	}
}
