// Command modemerged serves the mode-merging flow over an HTTP JSON API.
// Clients POST a design + SDC modes to /v1/merge, poll /v1/jobs/{id},
// and fetch merged SDC from /v1/jobs/{id}/result. Jobs run on a bounded
// worker pool with content-addressed caching of parsed designs and
// finished results; SIGINT/SIGTERM drains in-flight jobs before exit.
// Observability: GET /metrics serves Prometheus text, every job exposes
// its span tree at /v1/jobs/{id}/trace, and -debug-addr starts a separate
// listener with net/http/pprof profiles. /v2 requests honor the W3C
// traceparent header; -trace-export appends finished jobs' spans as
// NDJSON, and -flight-dir keeps flight recordings (span tree + CPU
// profile + goroutine dump) of slow, failed, or panicked jobs, served
// at /v2/flights.
//
// Distributed merge fabric: -fabric turns the server into a
// coordinator that publishes per-clique merge jobs on a work-stealing
// queue (wire API under /fabric/v1/, cluster view at GET /v2/cluster),
// and `modemerged -role worker -join http://coordinator:8080` starts a
// merge worker that pulls and executes those jobs. Output is
// byte-identical to the single-process path at any worker count,
// including across worker deaths.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"modemerge/internal/fabric"
	"modemerge/internal/obs"
	"modemerge/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		debugAddr   = flag.String("debug-addr", "", "separate listen address for net/http/pprof (empty = disabled)")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		workers     = flag.Int("workers", 0, "merge worker pool size (0 = all cores)")
		mergePar    = flag.Int("merge-parallelism", 0, "intra-merge worker pool bound per job; merged output is byte-identical for any value (0 = all cores, 1 = sequential)")
		queueDepth  = flag.Int("queue", 64, "maximum queued jobs before submissions are rejected")
		jobTimeout  = flag.Duration("job-timeout", 2*time.Minute, "default per-job execution deadline")
		maxTimeout  = flag.Duration("max-job-timeout", 15*time.Minute, "upper clamp for client-requested job deadlines")
		drainGrace  = flag.Duration("drain-grace", 30*time.Second, "how long shutdown waits for in-flight jobs")
		designCache = flag.Int("design-cache", 32, "prepared-design cache entries")
		resultCache = flag.Int("result-cache", 256, "finished-result cache entries")
		incrCache   = flag.Int("incr-cache", 4096, "incremental sub-merge cache entries (timing contexts, pair verdicts, clique artifacts)")
		incrDir     = flag.String("incr-cache-dir", "", "persist pair verdicts and clique artifacts under this directory (empty = memory only)")
		traceExport = flag.String("trace-export", "", "append finished jobs' spans as OTLP-flavored NDJSON to this file (empty = disabled)")
		flightDir   = flag.String("flight-dir", "", "keep flight recordings of slow/failed/panicked jobs under this directory (empty = disabled)")
		flightThr   = flag.Duration("flight-threshold", 30*time.Second, "job latency beyond which a flight recording is captured")
		flightKeep  = flag.Int("flight-keep", 16, "maximum flight recordings kept on disk")
		flightSlow  = flag.Int("flight-slowest", 4, "slowest recordings protected from eviction (must be < -flight-keep)")

		role        = flag.String("role", "server", "process role: server (HTTP API, optionally coordinating a merge fabric) or worker (join a coordinator and execute clique merges)")
		join        = flag.String("join", "", "coordinator base URL a worker joins (required with -role worker, e.g. http://coordinator:8080)")
		workerID    = flag.String("worker-id", "", "cluster identity of this worker (default hostname-pid)")
		fabricOn    = flag.Bool("fabric", false, "coordinate a distributed merge fabric: publish clique merges on /fabric/v1/ for workers to steal")
		fabricLocal = flag.Int("fabric-local-executors", 0, "coordinator-side clique executors sharing the work queue (0 = 1, -1 = none: pure dispatcher)")
		fabricWidth = flag.Int("fabric-dispatch", 0, "clique jobs one merge job keeps in flight on the fabric (0 = 8)")
		fabricLease = flag.Duration("fabric-lease-ttl", 30*time.Second, "silence after which a claimed clique job is presumed lost and requeued")
		fabricTries = flag.Int("fabric-max-attempts", 3, "executions of one clique job across lease expiries before it fails")
	)
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "modemerged:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	switch *role {
	case "server":
	case "worker":
		os.Exit(runWorker(logger, *join, *workerID, *mergePar))
	default:
		fmt.Fprintf(os.Stderr, "modemerged: unknown -role %q (want server or worker)\n", *role)
		os.Exit(2)
	}

	var exporter *obs.FileExporter
	if *traceExport != "" {
		exporter, err = obs.NewFileExporter(*traceExport)
		if err != nil {
			fmt.Fprintln(os.Stderr, "modemerged:", err)
			os.Exit(2)
		}
		defer exporter.Close()
	}

	cfg := service.Config{
		Workers:           *workers,
		MergeParallelism:  *mergePar,
		QueueDepth:        *queueDepth,
		DefaultJobTimeout: *jobTimeout,
		MaxJobTimeout:     *maxTimeout,
		DesignCacheSize:   *designCache,
		ResultCacheSize:   *resultCache,
		IncrCacheSize:     *incrCache,
		IncrCacheDir:      *incrDir,
		Logger:            logger,
		Flight: service.FlightConfig{
			Dir:              *flightDir,
			LatencyThreshold: *flightThr,
			KeepLast:         *flightKeep,
			KeepSlowest:      *flightSlow,
		},
		Fabric: service.FabricConfig{
			Enabled:        *fabricOn,
			LocalExecutors: *fabricLocal,
			DispatchWidth:  *fabricWidth,
			LeaseTTL:       *fabricLease,
			MaxAttempts:    *fabricTries,
		},
	}
	// Assign only through a typed nil check: a nil *FileExporter boxed
	// into the interface would read as "exporter configured".
	if exporter != nil {
		cfg.SpanExporter = exporter
	}
	srv := service.New(cfg)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           pprofHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server failed", "error", err)
			}
		}()
	}

	select {
	case err := <-errc:
		logger.Error("server failed", "error", err)
		os.Exit(1)
	case <-sigCtx.Done():
	}

	// Graceful drain: stop accepting connections, then give queued and
	// running jobs the grace period before canceling them.
	logger.Info("shutting down", "grace", drainGrace.String())
	graceCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := httpSrv.Shutdown(graceCtx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(graceCtx); err != nil {
			logger.Warn("pprof shutdown", "error", err)
		}
	}
	if err := srv.Shutdown(graceCtx); err != nil {
		logger.Error("drain incomplete", "error", err)
		if errors.Is(err, context.DeadlineExceeded) {
			os.Exit(3)
		}
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}

// runWorker is the -role worker main: join the coordinator at joinURL,
// pull clique merge jobs over the fabric wire API and execute them
// against the coordinator's artifact store until SIGINT/SIGTERM. Dying
// at any point is safe — the coordinator's lease expires and the job
// reruns elsewhere with byte-identical output.
func runWorker(logger *slog.Logger, joinURL, id string, parallelism int) int {
	if joinURL == "" {
		fmt.Fprintln(os.Stderr, "modemerged: -role worker requires -join <coordinator URL>")
		return 2
	}
	w := fabric.NewWorker(joinURL, fabric.WorkerConfig{
		ID:          id,
		Parallelism: parallelism,
		Logger:      logger,
	})
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Info("merge worker starting", "worker", w.ID(), "coordinator", joinURL)
	if err := w.Run(sigCtx); err != nil && !errors.Is(err, context.Canceled) {
		logger.Error("worker failed", "error", err)
		return 1
	}
	logger.Info("worker stopped")
	return 0
}

// buildLogger constructs the process logger from the -log-format and
// -log-level flags.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q", format)
	}
}

// pprofHandler builds the pprof mux explicitly so the profiles live only
// on the debug listener, never on the public API address.
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
