// Command modemerged serves the mode-merging flow over an HTTP JSON API.
// Clients POST a design + SDC modes to /v1/merge, poll /v1/jobs/{id},
// and fetch merged SDC from /v1/jobs/{id}/result. Jobs run on a bounded
// worker pool with content-addressed caching of parsed designs and
// finished results; SIGINT/SIGTERM drains in-flight jobs before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"modemerge/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "merge worker pool size (0 = all cores)")
		queueDepth  = flag.Int("queue", 64, "maximum queued jobs before submissions are rejected")
		jobTimeout  = flag.Duration("job-timeout", 2*time.Minute, "default per-job execution deadline")
		maxTimeout  = flag.Duration("max-job-timeout", 15*time.Minute, "upper clamp for client-requested job deadlines")
		drainGrace  = flag.Duration("drain-grace", 30*time.Second, "how long shutdown waits for in-flight jobs")
		designCache = flag.Int("design-cache", 32, "prepared-design cache entries")
		resultCache = flag.Int("result-cache", 256, "finished-result cache entries")
	)
	flag.Parse()

	srv := service.New(service.Config{
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		DefaultJobTimeout: *jobTimeout,
		MaxJobTimeout:     *maxTimeout,
		DesignCacheSize:   *designCache,
		ResultCacheSize:   *resultCache,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("modemerged listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("modemerged: %v", err)
	case <-sigCtx.Done():
	}

	// Graceful drain: stop accepting connections, then give queued and
	// running jobs the grace period before canceling them.
	log.Printf("modemerged: shutting down (grace %s)", *drainGrace)
	graceCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := httpSrv.Shutdown(graceCtx); err != nil {
		log.Printf("modemerged: http shutdown: %v", err)
	}
	if err := srv.Shutdown(graceCtx); err != nil {
		fmt.Fprintln(os.Stderr, "modemerged: drain incomplete:", err)
		if errors.Is(err, context.DeadlineExceeded) {
			os.Exit(3)
		}
		os.Exit(1)
	}
	log.Printf("modemerged: drained cleanly")
}
