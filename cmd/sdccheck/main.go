// Command sdccheck decides whether two SDC constraint sets are
// timing-equivalent on a design — the paper's §2 definition, compared on
// timing relationships rather than text:
//
//	sdccheck -v design.v [-top top] [-lib cells.mlf] a.sdc b.sdc
//
// It reports, in both directions, path groups one side relaxes
// (sign-off-unsafe differences) or tightens (pessimism). Exit status 0
// means exactly equivalent, 1 means different, 2 means usage/parse error.
//
// With -super, b.sdc is instead validated as a superset (merged) mode of
// one or more a.sdc files: b must never relax any of them.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"modemerge/pkg/modemerge"
)

func main() {
	var (
		verilog = flag.String("v", "", "structural Verilog netlist (required)")
		top     = flag.String("top", "", "top module name (default: inferred)")
		libFile = flag.String("lib", "", "cell library in mini library format (default: built-in)")
		super   = flag.Bool("super", false, "treat the last SDC as a superset mode of all preceding ones")
		maxDiff = flag.Int("maxdiff", 20, "maximum differences to print per direction")
	)
	flag.Parse()
	if *verilog == "" || flag.NArg() < 2 {
		flag.Usage()
		os.Exit(2)
	}
	equal, err := run(*verilog, *top, *libFile, *super, *maxDiff, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdccheck:", err)
		os.Exit(2)
	}
	if !equal {
		os.Exit(1)
	}
}

func run(verilog, top, libFile string, super bool, maxDiff int, files []string) (bool, error) {
	libSrc := ""
	if libFile != "" {
		data, err := os.ReadFile(libFile)
		if err != nil {
			return false, err
		}
		libSrc = string(data)
	}
	vsrc, err := os.ReadFile(verilog)
	if err != nil {
		return false, err
	}
	design, err := modemerge.LoadDesign(string(vsrc), libSrc, top)
	if err != nil {
		return false, err
	}
	var modes []*modemerge.Mode
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			return false, err
		}
		name := strings.TrimSuffix(filepath.Base(f), filepath.Ext(f))
		m, _, err := design.ParseMode(name, string(src))
		if err != nil {
			return false, fmt.Errorf("%s: %w", f, err)
		}
		modes = append(modes, m)
	}

	printDiffs := func(title string, diffs []string) {
		if len(diffs) == 0 {
			return
		}
		fmt.Printf("%s (%d):\n", title, len(diffs))
		for i, d := range diffs {
			if i >= maxDiff {
				fmt.Printf("  ... and %d more\n", len(diffs)-maxDiff)
				break
			}
			fmt.Printf("  %s\n", d)
		}
	}

	if super {
		individual := modes[:len(modes)-1]
		merged := modes[len(modes)-1]
		res, err := modemerge.CheckEquivalence(context.Background(), design, individual, merged, modemerge.Options{})
		if err != nil {
			return false, err
		}
		fmt.Printf("superset check %s vs %d modes: %s\n", merged.Name, len(individual), res)
		printDiffs("optimistic (sign-off unsafe)", res.OptimisticMismatches)
		if res.Equivalent() {
			fmt.Println("VERDICT: superset is sign-off safe")
			return true, nil
		}
		fmt.Println("VERDICT: superset RELAXES the individual modes")
		return false, nil
	}

	if len(modes) != 2 {
		return false, fmt.Errorf("pairwise check wants exactly two SDC files (use -super for more)")
	}
	a, b := modes[0], modes[1]
	resAB, err := modemerge.CheckEquivalence(context.Background(), design, []*modemerge.Mode{a}, b, modemerge.Options{})
	if err != nil {
		return false, err
	}
	resBA, err := modemerge.CheckEquivalence(context.Background(), design, []*modemerge.Mode{b}, a, modemerge.Options{})
	if err != nil {
		return false, err
	}
	fmt.Printf("%s vs %s: %s / reverse: %s\n", a.Name, b.Name, resAB, resBA)
	printDiffs(fmt.Sprintf("%s relaxes %s", b.Name, a.Name), resAB.OptimisticMismatches)
	printDiffs(fmt.Sprintf("%s relaxes %s", a.Name, b.Name), resBA.OptimisticMismatches)
	if resAB.PessimisticGroups > 0 {
		fmt.Printf("%s tightens %s on %d path groups\n", b.Name, a.Name, resAB.PessimisticGroups)
	}
	if resBA.PessimisticGroups > 0 {
		fmt.Printf("%s tightens %s on %d path groups\n", a.Name, b.Name, resBA.PessimisticGroups)
	}
	equal := resAB.Equivalent() && resBA.Equivalent() &&
		resAB.PessimisticGroups == 0 && resBA.PessimisticGroups == 0
	if equal {
		fmt.Println("VERDICT: equivalent")
	} else {
		fmt.Println("VERDICT: different")
	}
	return equal, nil
}
