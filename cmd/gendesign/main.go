// Command gendesign emits a synthetic industrial-shaped design and a
// family of SDC timing modes, for experimenting with the merging flow:
//
//	gendesign -o out -domains 3 -blocks 2 -stages 4 -regs 8 -groups 2 -modes 3,4
//
// The output directory receives design.v, the built-in library as
// cells.mlf, and one .sdc file per mode.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"modemerge/internal/gen"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
)

func main() {
	var (
		outDir  = flag.String("o", "gendesign_out", "output directory")
		name    = flag.String("name", "synth", "design name")
		seed    = flag.Int64("seed", 1, "generator seed")
		domains = flag.Int("domains", 2, "clock domains")
		blocks  = flag.Int("blocks", 2, "blocks per domain")
		stages  = flag.Int("stages", 3, "pipeline stages per block")
		regs    = flag.Int("regs", 6, "registers per stage")
		depth   = flag.Int("depth", 3, "combinational depth between stages")
		cross   = flag.Int("cross", 2, "cross-domain paths")
		groups  = flag.Int("groups", 1, "non-mergeable mode groups")
		modes   = flag.String("modes", "3", "comma-separated modes per group")
		period  = flag.Float64("period", 2, "base clock period")
	)
	flag.Parse()
	if err := run(*outDir, *name, *seed, *domains, *blocks, *stages, *regs, *depth, *cross, *groups, *modes, *period); err != nil {
		fmt.Fprintln(os.Stderr, "gendesign:", err)
		os.Exit(1)
	}
}

func run(outDir, name string, seed int64, domains, blocks, stages, regs, depth, cross, groups int, modesSpec string, period float64) error {
	spec := gen.DesignSpec{
		Name: name, Seed: seed, Domains: domains, BlocksPerDomain: blocks,
		Stages: stages, RegsPerStage: regs, CloudDepth: depth, CrossPaths: cross,
	}
	g, err := gen.Generate(spec)
	if err != nil {
		return err
	}
	var sizes []int
	for _, part := range strings.Split(modesSpec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return fmt.Errorf("bad -modes entry %q", part)
		}
		sizes = append(sizes, v)
	}
	for len(sizes) < groups {
		sizes = append(sizes, sizes[len(sizes)-1])
	}
	sizes = sizes[:groups]
	family := gen.FamilySpec{Groups: groups, ModesPerGroup: sizes, BasePeriod: period}

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	vPath := filepath.Join(outDir, "design.v")
	if err := os.WriteFile(vPath, []byte(netlist.WriteVerilog(g.Design)), 0o644); err != nil {
		return err
	}
	libPath := filepath.Join(outDir, "cells.mlf")
	if err := os.WriteFile(libPath, []byte(library.Format(library.Default())), 0o644); err != nil {
		return err
	}
	var files []string
	for _, m := range g.Modes(family) {
		p := filepath.Join(outDir, m.Name+".sdc")
		if err := os.WriteFile(p, []byte(m.Text), 0o644); err != nil {
			return err
		}
		files = append(files, filepath.Base(p))
	}
	s := g.Design.Stats()
	fmt.Printf("wrote %s: %d cells (%d sequential), %d ports\n", vPath, s.Cells, s.Sequential, s.Ports)
	fmt.Printf("wrote %s and %d modes: %s\n", libPath, len(files), strings.Join(files, " "))
	fmt.Printf("try:\n  modemerge -v %s -lib %s -o %s/merged %s/*.sdc\n",
		vPath, libPath, outDir, outDir)
	return nil
}
