// Command sta runs static timing analysis for a design under one or more
// SDC modes and reports endpoint slacks:
//
//	sta -v design.v [-top top] [-lib cells.mlf] [-n 20] mode.sdc [more.sdc ...]
//
// With several SDC files it reports the worst slack per endpoint across
// all of them (the multi-mode signoff view the merging flow compares
// against).
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"modemerge/internal/graph"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
	"modemerge/internal/sdc"
	"modemerge/internal/sta"
)

func main() {
	var (
		verilog = flag.String("v", "", "structural Verilog netlist (required)")
		top     = flag.String("top", "", "top module name (default: inferred)")
		libFile = flag.String("lib", "", "cell library in mini library format (default: built-in)")
		n       = flag.Int("n", 20, "number of critical endpoints to report")
		workers = flag.Int("workers", 0, "worker count (0 = all cores)")
		trace   = flag.Int("trace", 0, "trace the critical path of the N worst endpoints")
	)
	flag.Parse()
	if *verilog == "" || flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*verilog, *top, *libFile, *n, *workers, *trace, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "sta:", err)
		os.Exit(1)
	}
}

func run(verilog, top, libFile string, n, workers, trace int, sdcFiles []string) error {
	lib := library.Default()
	if libFile != "" {
		data, err := os.ReadFile(libFile)
		if err != nil {
			return err
		}
		lib, err = library.Parse(string(data))
		if err != nil {
			return err
		}
	}
	vsrc, err := os.ReadFile(verilog)
	if err != nil {
		return err
	}
	design, err := netlist.ParseVerilog(string(vsrc), lib, top)
	if err != nil {
		return err
	}
	g, err := graph.Build(design)
	if err != nil {
		return err
	}
	s := design.Stats()
	fmt.Printf("design %s: %d cells (%d sequential), %d endpoints\n",
		design.Name, s.Cells, s.Sequential, len(g.Endpoints()))

	type worst struct {
		r   sta.EndpointResult
		ctx *sta.Context
		has bool
	}
	acc := map[string]*worst{}
	start := time.Now()
	for _, f := range sdcFiles {
		src, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(f), filepath.Ext(f))
		mode, _, err := sdc.Parse(name, string(src), design)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		ctx, err := sta.NewContext(g, mode, sta.Options{Workers: workers})
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		for _, w := range ctx.Warnings {
			fmt.Fprintf(os.Stderr, "%s: warning: %s\n", f, w)
		}
		results := ctx.AnalyzeEndpoints(context.Background())
		worstSetup, worstHold, checked := sta.Summarize(results)
		fmt.Printf("mode %-16s worst setup %8.3f  worst hold %8.3f  endpoints checked %d\n",
			name, finite(worstSetup), finite(worstHold), checked)
		for _, r := range results {
			w := acc[r.Name]
			if w == nil {
				w = &worst{}
				acc[r.Name] = w
			}
			if r.HasSetup && (!w.has || r.SetupSlack < w.r.SetupSlack) {
				w.r = r
				w.ctx = ctx
				w.has = true
			}
		}
	}
	fmt.Printf("analysis time: %v\n\n", time.Since(start).Round(time.Millisecond))

	var all []sta.EndpointResult
	for _, w := range acc {
		if w.has {
			all = append(all, w.r)
		}
	}
	sta.SortBySetupSlack(all)
	fmt.Printf("critical endpoints (worst across %d modes):\n", len(sdcFiles))
	for i, r := range all {
		if i >= n {
			break
		}
		fmt.Println("  " + sta.FormatEndpoint(r))
	}
	for i, r := range all {
		if i >= trace {
			break
		}
		w := acc[r.Name]
		if w == nil || w.ctx == nil {
			continue
		}
		if p, ok := w.ctx.TraceWorstArrival(r.Node); ok {
			fmt.Printf("\npath to %s (slack %.4f):\n%s", r.Name, r.SetupSlack, p.String())
		}
	}
	return nil
}

func finite(v float64) float64 {
	if math.IsInf(v, 0) {
		return math.NaN()
	}
	return v
}
