// Command tables regenerates every table and figure of the paper's
// evaluation on the synthetic design suite:
//
//	tables -table5 -table6          # the evaluation tables (default)
//	tables -fig2                    # the mergeability graph demo
//	tables -ablation                # naive vs graph-based merging
//	tables -scale 2 -workers 8      # bigger designs, more parallelism
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"modemerge/internal/core"
	"modemerge/internal/experiments"
	"modemerge/internal/report"
	"modemerge/internal/sta"
)

func main() {
	var (
		t5       = flag.Bool("table5", false, "reproduce Table 5 (mode reduction, merging runtime)")
		t6       = flag.Bool("table6", false, "reproduce Table 6 (STA runtime, conformity)")
		fig2     = flag.Bool("fig2", false, "reproduce Figure 2 (mergeability graph, cliques)")
		ablation = flag.Bool("ablation", false, "naive textual merge vs graph-based merge")
		scale    = flag.Float64("scale", 1, "design size multiplier")
		workers  = flag.Int("workers", 0, "STA worker count (0 = all cores)")
		designs  = flag.String("designs", "ABCDEF", "subset of designs to run")
	)
	flag.Parse()
	if !*t5 && !*t6 && !*fig2 && !*ablation {
		*t5, *t6 = true, true
	}
	if err := run(*t5, *t6, *fig2, *ablation, *scale, *workers, *designs); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run(t5, t6, fig2, ablation bool, scale float64, workers int, designs string) error {
	staOpt := sta.Options{Workers: workers}
	coreOpt := core.Options{STA: staOpt}

	if fig2 {
		mb, cliques, err := experiments.Figure2Demo()
		if err != nil {
			return err
		}
		fmt.Println("Figure 2: mergeability graph")
		fmt.Print(core.FormatMergeability(mb, cliques))
		fmt.Println()
	}

	if !t5 && !t6 && !ablation {
		return nil
	}

	var rows5 []experiments.Table5Row
	var rows6 []experiments.Table6Row
	var rowsAbl []experiments.AblationRow
	for _, c := range experiments.PaperDesigns(scale) {
		if !contains(designs, c.Label) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running design %s (~%d cells, %d modes)...\n",
			c.Label, c.Spec.CellEstimate(), c.Family.TotalModes())
		p, err := experiments.Prepare(c)
		if err != nil {
			return err
		}
		mr, err := experiments.RunTable5(context.Background(), p, coreOpt)
		if err != nil {
			return err
		}
		rows5 = append(rows5, mr.Row)
		if t6 || ablation {
			row6, err := experiments.RunTable6(context.Background(), mr, staOpt)
			if err != nil {
				return err
			}
			rows6 = append(rows6, row6)
		}
		if ablation {
			abl, err := experiments.RunNaiveAblation(context.Background(), mr, coreOpt, staOpt)
			if err != nil {
				return err
			}
			rowsAbl = append(rowsAbl, abl)
		}
	}
	if t5 {
		fmt.Println(report.Table5(rows5))
	}
	if t6 {
		fmt.Println(report.Table6(rows6))
	}
	if ablation {
		fmt.Println(report.Ablation(rowsAbl))
	}
	return nil
}

func contains(set string, label string) bool {
	for i := 0; i < len(set); i++ {
		if string(set[i]) == label {
			return true
		}
	}
	return false
}
