// Command modemerge merges SDC timing modes of a gate-level design into
// superset modes using the timing-graph based algorithm:
//
//	modemerge -v design.v [-top top] [-lib cells.mlf] -o merged_dir mode1.sdc mode2.sdc ...
//
// Mergeability is analyzed first; each merge clique produces one merged
// SDC file in the output directory, together with a merge report. Modes
// that cannot merge with anything are copied through unchanged.
//
// With -cache-dir, sub-merge products (pairwise mergeability verdicts
// and whole-clique merge artifacts) persist across runs, so re-running
// after editing one mode of N redoes only that mode's share of the work.
//
// With -hier, the netlist is loaded hierarchically (top + block
// modules) and each clique merges per block through extracted timing
// models — never optimistic relative to a flat merge, and feasible on
// designs too large for flat refinement.
//
// With -corners corners.json, the merge spans a multi-corner scenario
// matrix: the JSON file holds an array of corners ({"name": ...,
// "delay_scale": ..., "early_scale": ..., "late_scale": ...,
// "margin_scale": ..., "sdc": ...}; zero factors mean 1.0), a clique
// merges only when mergeable in every corner, refinement targets the
// across-corner worst case, and each merged mode additionally writes
// one deployment file per corner (<name>@<corner>.sdc — the merged
// text plus the corner's SDC overlay).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"modemerge/pkg/modemerge"
)

func main() {
	var (
		verilog   = flag.String("v", "", "structural Verilog netlist (required)")
		top       = flag.String("top", "", "top module name (default: inferred)")
		libFile   = flag.String("lib", "", "cell library in mini library format (default: built-in)")
		outDir    = flag.String("o", "merged", "output directory for merged SDC files")
		tolerance = flag.Float64("tolerance", 0.05, "relative tolerance for clock/drive/load constraint merging")
		workers   = flag.Int("workers", 0, "worker count (0 = all cores)")
		jobs      = flag.Int("j", 0, "intra-merge parallelism: bounds the sharded endpoint loops and pairwise mergeability analysis; output is byte-identical for any value (0 = all cores, 1 = sequential)")
		validate  = flag.Bool("validate", true, "run the equivalence check on each merged mode")
		quiet     = flag.Bool("q", false, "suppress progress output")
		explain   = flag.Bool("explain", false, "print an explain report per merged mode and write <name>.explain.{txt,json} beside the SDC output")
		timeout   = flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit); exits with code 3 on deadline")
		cacheDir  = flag.String("cache-dir", "", "incremental re-merge cache directory: persists sub-merge products across runs (empty = no reuse)")
		hier      = flag.Bool("hier", false, "treat the netlist as hierarchical (top + block modules) and merge per block through extracted timing models; output is never optimistic relative to a flat merge and scales past flat refinement")
		corners   = flag.String("corners", "", "JSON corner-set file spanning a multi-corner scenario matrix; writes one <name>@<corner>.sdc deployment per merged mode and corner")
	)
	flag.Parse()
	if *verilog == "" || flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *verilog, *top, *libFile, *outDir, *cacheDir, *corners, *tolerance, *workers, *jobs, *validate, *quiet, *explain, *hier, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "modemerge:", err)
		if errors.Is(err, context.DeadlineExceeded) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

// cornerJSON is one corner of a -corners file. Field names match the
// service API's corner objects, so one corner-set file serves both.
type cornerJSON struct {
	Name        string  `json:"name"`
	DelayScale  float64 `json:"delay_scale,omitempty"`
	EarlyScale  float64 `json:"early_scale,omitempty"`
	LateScale   float64 `json:"late_scale,omitempty"`
	MarginScale float64 `json:"margin_scale,omitempty"`
	SDC         string  `json:"sdc,omitempty"`
}

// loadCorners reads and validates a -corners JSON file.
func loadCorners(path string) ([]modemerge.Corner, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw []cornerJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make([]modemerge.Corner, len(raw))
	for i, c := range raw {
		out[i] = modemerge.Corner{Name: c.Name, DelayScale: c.DelayScale,
			EarlyScale: c.EarlyScale, LateScale: c.LateScale,
			MarginScale: c.MarginScale, SDC: c.SDC}
	}
	if err := modemerge.ValidateCorners(out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func run(ctx context.Context, verilog, top, libFile, outDir, cacheDir, cornersFile string, tolerance float64, workers, jobs int, validate, quiet, explain, hier bool, sdcFiles []string) error {
	libSrc := ""
	if libFile != "" {
		data, err := os.ReadFile(libFile)
		if err != nil {
			return err
		}
		libSrc = string(data)
	}
	vsrc, err := os.ReadFile(verilog)
	if err != nil {
		return err
	}
	var design *modemerge.Design
	if hier {
		design, err = modemerge.LoadHierDesign(string(vsrc), libSrc, top)
	} else {
		design, err = modemerge.LoadDesign(string(vsrc), libSrc, top)
	}
	if err != nil {
		return err
	}
	if warnings := design.Warnings(); len(warnings) > 0 && !quiet {
		for _, w := range warnings {
			fmt.Fprintln(os.Stderr, "warning:", w)
		}
	}
	if !quiet {
		s := design.Stats()
		fmt.Fprintf(os.Stderr, "design %s: %d cells (%d sequential), %d nets, %d ports\n",
			design.Name(), s.Cells, s.Sequential, s.Nets, s.Ports)
	}

	var modes []*modemerge.Mode
	for _, f := range sdcFiles {
		src, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(f), filepath.Ext(f))
		mode, ignored, err := design.ParseMode(name, string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		if len(ignored) > 0 && !quiet {
			fmt.Fprintf(os.Stderr, "%s: ignored commands: %s\n", f, strings.Join(dedup(ignored), ", "))
		}
		modes = append(modes, mode)
	}

	opt := modemerge.Options{Tolerance: tolerance, Parallelism: jobs, Workers: workers, Hierarchical: hier}
	if cornersFile != "" {
		crns, err := loadCorners(cornersFile)
		if err != nil {
			return fmt.Errorf("corners: %w", err)
		}
		opt.Corners = crns
		if !quiet {
			names := make([]string, len(crns))
			for i, c := range crns {
				names[i] = c.Name
			}
			fmt.Fprintf(os.Stderr, "scenario matrix: %d modes x %d corners (%s)\n",
				len(sdcFiles), len(crns), strings.Join(names, ", "))
		}
	}
	if cacheDir != "" {
		cache := modemerge.NewCache(0)
		if err := cache.WithDisk(cacheDir); err != nil {
			return fmt.Errorf("cache dir: %w", err)
		}
		opt.Cache = cache
	}
	merged, reports, mb, err := modemerge.MergeAll(ctx, design, modes, opt)
	if err != nil {
		return err
	}
	cliques := mb.Cliques()
	if !quiet {
		fmt.Fprint(os.Stderr, modemerge.FormatMergeability(mb, cliques))
		fmt.Fprintf(os.Stderr, "%d modes -> %d merged modes\n", len(modes), len(merged))
		if opt.Cache != nil {
			cs := opt.Cache.Stats()
			fmt.Fprintf(os.Stderr, "cache: pair %d/%d hits, clique %d/%d hits\n",
				cs.PairHits, cs.PairHits+cs.PairMisses, cs.CliqueHits, cs.CliqueHits+cs.CliqueMisses)
		}
	}

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for i, m := range merged {
		path := filepath.Join(outDir, sanitize(m.Name)+".sdc")
		text := modemerge.WriteSDC(m)
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			return err
		}
		// Each merged mode deploys once per corner: the merged base text
		// with the corner's overlay appended — one cell of the reduced
		// scenario matrix.
		for _, crn := range opt.Corners {
			dep := text
			if crn.SDC != "" {
				dep += "\n" + crn.SDC + "\n"
			}
			dpath := filepath.Join(outDir, sanitize(m.Name)+"@"+sanitize(crn.Name)+".sdc")
			if err := os.WriteFile(dpath, []byte(dep), 0o644); err != nil {
				return err
			}
		}
		rep := reports[i]
		if !quiet {
			fmt.Fprintf(os.Stderr, "wrote %s (uniquified=%d dropped=%d refinement FPs=%d stops=%d)\n",
				path, rep.UniquifiedExceptions, rep.DroppedExceptions,
				rep.AddedFalsePaths+rep.LaunchBlocks, rep.ClockStops)
			for _, w := range rep.Warnings {
				fmt.Fprintln(os.Stderr, "  warning:", w)
			}
		}
		if explain {
			exp := rep.Explain(m.Name)
			text := exp.Text()
			fmt.Print(text)
			base := filepath.Join(outDir, sanitize(m.Name))
			if err := os.WriteFile(base+".explain.txt", []byte(text), 0o644); err != nil {
				return err
			}
			data, err := json.MarshalIndent(exp, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(base+".explain.json", append(data, '\n'), 0o644); err != nil {
				return err
			}
		}
	}

	if validate {
		ok := true
		for ci, clique := range cliques {
			if len(clique) < 2 {
				continue
			}
			group := make([]*modemerge.Mode, len(clique))
			for i, mi := range clique {
				group[i] = modes[mi]
			}
			res, err := modemerge.CheckEquivalence(ctx, design, group, merged[ci], opt)
			if err != nil {
				return err
			}
			status := "OK"
			if !res.Equivalent() {
				status = "FAILED"
				ok = false
			}
			fmt.Printf("validation %s: %s (%s)\n", merged[ci].Name, status, res)
			for _, m := range res.OptimisticMismatches {
				fmt.Printf("  optimistic: %s\n", m)
			}
		}
		if !ok {
			return fmt.Errorf("equivalence validation failed")
		}
	}
	return nil
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-', r == '+':
			return r
		default:
			return '_'
		}
	}, name)
}

func dedup(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
