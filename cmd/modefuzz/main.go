// Command modefuzz is the differential fuzzing driver for the mode-merge
// flow. Each trial samples a random synthetic design, a random mode
// family and random constraint perturbations, merges the modes with the
// timing-graph flow and checks three properties (equivalence, SDC
// round-trip, pessimism bound vs the naive baseline). Failures shrink to
// a minimal spec and are saved as JSON reproducers in the corpus, which
// `go test ./internal/difftest` replays as regressions.
//
// Usage:
//
//	modefuzz -trials 100 -seed 1                 # fuzz, fail on violations
//	modefuzz -trials 25 -seed 7 -fault keep-subset-exceptions
//	                                             # prove the oracle catches
//	                                             # an injected merge bug
//	modefuzz -replay                             # replay the corpus only
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"modemerge/internal/core"
	"modemerge/internal/difftest"
)

func main() {
	var (
		trials    = flag.Int("trials", 100, "number of random trials")
		seed      = flag.Int64("seed", 1, "base PRNG seed; trial i uses seed+i")
		corpusDir = flag.String("corpus", "internal/difftest/testdata/corpus", "corpus directory for replay and new reproducers")
		fault     = flag.String("fault", "", "inject a merge bug: keep-subset-exceptions, skip-clock-refine, skip-data-refine, merge-best-corner-only, ...")
		replay    = flag.Bool("replay", false, "only replay the corpus, no random trials")
		noShrink  = flag.Bool("noshrink", false, "save failing specs without shrinking")
		save      = flag.Bool("save", false, "save shrunk reproducers of new failures into the corpus")
		tolerance = flag.Float64("tolerance", 0, "merge tolerance (0 = default)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent trials")
		timeout   = flag.Duration("timeout", 0, "overall deadline (0 = none)")
	)
	flag.Parse()

	cx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		cx, cancel = context.WithTimeout(cx, *timeout)
		defer cancel()
	}

	injectFault, err := difftest.ParseFault(*fault)
	if err != nil {
		fmt.Fprintln(os.Stderr, "modefuzz:", err)
		os.Exit(2)
	}
	inject := injectFault.Inject

	if !replayCorpus(cx, *corpusDir) {
		os.Exit(1)
	}
	if *replay {
		return
	}

	// Random trials. With a fault injected the expectation flips: every
	// trial whose design exercises the broken stage should FAIL, and the
	// run errors out if no trial does (the oracle lost its teeth).
	start := time.Now()
	type outcome struct {
		trial int
		res   *difftest.TrialResult
	}
	results := make([]outcome, *trials)
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(1, *workers))
	for i := 0; i < *trials; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(*seed + int64(i)))
			spec := difftest.RandomSpec(rng)
			if injectFault.Shape != nil {
				injectFault.Shape(spec, rng)
			}
			spec.Tolerance = *tolerance
			results[i] = outcome{trial: i, res: difftest.Run(cx, spec, inject)}
		}(i)
	}
	wg.Wait()

	failures, infra := 0, 0
	propCount := map[string]int{}
	for _, o := range results {
		res := o.res
		if res == nil {
			continue
		}
		if res.Err != nil {
			infra++
			fmt.Fprintf(os.Stderr, "trial %d: ERROR %v\n  spec: %s\n", o.trial, res.Err, res.Spec)
			continue
		}
		if !res.Failed() {
			continue
		}
		failures++
		fmt.Printf("trial %d: FAIL %s\n", o.trial, res.Spec)
		for _, v := range res.Violations {
			fmt.Printf("  %s\n", v)
		}
		if *fault == "" || *save {
			reportFailure(cx, o.trial, res, inject, *fault, *seed, *trials, *corpusDir, !*noShrink, *save)
		}
	}
	for _, o := range results {
		if o.res != nil {
			for _, v := range o.res.Violations {
				propCount[v.Property]++
			}
		}
	}
	var props []string
	for p, n := range propCount {
		props = append(props, fmt.Sprintf("%s=%d", p, n))
	}
	sort.Strings(props)
	fmt.Printf("modefuzz: %d trials in %v: %d failing, %d errors %v\n",
		*trials, time.Since(start).Round(time.Millisecond), failures, infra, props)

	switch {
	case infra > 0:
		os.Exit(1)
	case *fault != "" && injectFault.Detectable && failures == 0:
		fmt.Fprintf(os.Stderr, "modefuzz: injected fault %q was never detected — oracle regression\n", *fault)
		os.Exit(1)
	case *fault != "" && !injectFault.Detectable:
		fmt.Printf("modefuzz: fault %q is pessimism-only (%s); %d detections is informational\n",
			*fault, injectFault.Note, failures)
	case *fault == "" && failures > 0:
		os.Exit(1)
	}
}

// replayCorpus re-runs every committed reproducer; returns false when an
// entry no longer reproduces its pinned expectation.
func replayCorpus(cx context.Context, dir string) bool {
	corpus, err := difftest.LoadDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "modefuzz: corpus:", err)
		return false
	}
	if len(corpus) == 0 {
		return true
	}
	names := make([]string, 0, len(corpus))
	for name := range corpus {
		names = append(names, name)
	}
	sort.Strings(names)
	ok := true
	for _, name := range names {
		r := corpus[name]
		f, err := difftest.ParseFault(r.Fault)
		if err != nil {
			fmt.Fprintf(os.Stderr, "corpus %s: %v\n", name, err)
			ok = false
			continue
		}
		res := difftest.Run(cx, &r.Spec, f.Inject)
		if err := r.Replay(res); err != nil {
			fmt.Fprintf(os.Stderr, "corpus %s: %v\n", name, err)
			ok = false
		}
	}
	fmt.Printf("modefuzz: corpus replay: %d entries, ok=%v\n", len(corpus), ok)
	return ok
}

// reportFailure shrinks a failing trial and optionally saves it.
func reportFailure(cx context.Context, trial int, res *difftest.TrialResult, inject core.FaultInjection, fault string, seed int64, trials int, corpusDir string, shrink, save bool) {
	spec := res.Spec
	if shrink {
		spec = difftest.Shrink(cx, spec, inject)
		fmt.Printf("  shrunk: %s\n", spec)
	}
	if !save {
		return
	}
	final := difftest.Run(cx, spec, inject)
	var props []string
	seen := map[string]bool{}
	for _, v := range final.Violations {
		if !seen[v.Property] {
			seen[v.Property] = true
			props = append(props, v.Property)
		}
	}
	sort.Strings(props)
	r := &difftest.Reproducer{
		Spec:             *spec,
		Fault:            fault,
		ExpectViolations: true,
		Properties:       props,
		FoundBy:          fmt.Sprintf("modefuzz -seed %d -trials %d (trial %d)", seed, trials, trial),
	}
	path, err := r.Save(corpusDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "modefuzz: save:", err)
		return
	}
	fmt.Printf("  saved reproducer: %s\n", path)
}
